//! The RAM-based Linear Feedback GRNG (paper Section 4.1).
//!
//! A single lane ([`RlfGrng`]) wraps the 255-bit combined-update RLF logic:
//! the seed's population count follows `B(255, ½)`, which approximates
//! `N(127.5, 63.75)` (equation 8 holds comfortably: 255 > 18). The count is
//! affine-normalized to target N(0, 1).
//!
//! Consecutive popcounts of one lane differ by at most 5, so a single lane
//! is a slowly-mixing stream. The hardware fixes this with parallelism:
//! [`ParallelRlfGrng`] models Figure 8 — `m` lanes share one indexer and
//! controller, and the per-four-lane output multiplexers rotate the
//! selection order every cycle "for enhanced randomness". The interleaved
//! stream is dramatically better mixed than any single lane
//! (see the runs-statistic tests at the bottom of this file).

use vibnn_rng::{BitSource, RlfLogic, RlfMode, SplitMix64};

use crate::{substream_seed, GaussianSource, StreamFork};

/// Width of the paper's RLF seed (255 bits for an 8-bit output).
pub const RLF_WIDTH: usize = 255;

fn normalize(count: u32) -> f64 {
    let n = RLF_WIDTH as f64;
    (f64::from(count) - n / 2.0) / (n / 4.0).sqrt()
}

/// One RLF-GRNG lane (255-bit seed, combined 5-tap update).
///
/// # Example
///
/// ```
/// use vibnn_grng::{GaussianSource, RlfGrng};
/// let mut g = RlfGrng::from_seed(42);
/// let x = g.next_gaussian();
/// assert!(x.abs() < 16.5); // popcount in [0, 255] maps to ~±16
/// ```
#[derive(Debug, Clone)]
pub struct RlfGrng {
    logic: RlfLogic,
    /// Base for substream derivation, captured from the construction-time
    /// seed bits so [`StreamFork::fork`] never depends on how much of the
    /// stream has been consumed.
    fork_base: u64,
}

/// Folds a seed-bit image into a 64-bit fork base.
fn fold_seed_bits(logic: &RlfLogic) -> u64 {
    let mut acc = 0xA076_1D64_78BD_642Fu64;
    for &w in logic.seed_bits().words() {
        acc = (acc ^ w).wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(23);
    }
    acc
}

impl RlfGrng {
    /// Creates a lane with a random non-zero seed drawn from `source`.
    pub fn new(source: &mut impl BitSource) -> Self {
        let logic = RlfLogic::random(RLF_WIDTH, RlfMode::Combined, source);
        let fork_base = fold_seed_bits(&logic);
        Self { logic, fork_base }
    }

    /// Creates a lane from a 64-bit seed value.
    pub fn from_seed(seed: u64) -> Self {
        let mut src = SplitMix64::new(seed);
        Self::new(&mut src)
    }

    /// Creates a lane using the *simple* (3-tap, step-1) update — the
    /// pre-optimization design of equations 11a–c, kept for the ablation
    /// bench.
    pub fn simple_mode(seed: u64) -> Self {
        let mut src = SplitMix64::new(seed);
        let logic = RlfLogic::random(RLF_WIDTH, RlfMode::Simple, &mut src);
        let fork_base = fold_seed_bits(&logic);
        Self { logic, fork_base }
    }

    /// Raw binomial output (the 8-bit hardware value before normalization).
    pub fn next_count(&mut self) -> u32 {
        self.logic.step()
    }

    /// Access the underlying RLF logic.
    pub fn logic(&self) -> &RlfLogic {
        &self.logic
    }
}

impl GaussianSource for RlfGrng {
    fn next_gaussian(&mut self) -> f64 {
        normalize(self.next_count())
    }

    fn fill(&mut self, out: &mut [f64]) {
        // One lane is a pure popcount walk: the block kernel is the scalar
        // loop with the step/normalize pipeline kept in registers.
        for slot in out {
            *slot = normalize(self.logic.step());
        }
    }
}

impl StreamFork for RlfGrng {
    fn fork(&self, stream_id: u64) -> Self {
        let mut src = SplitMix64::new(substream_seed(self.fork_base, stream_id));
        let logic = RlfLogic::random(RLF_WIDTH, self.logic.mode(), &mut src);
        let fork_base = fold_seed_bits(&logic);
        Self { logic, fork_base }
    }
}

/// The parallel RLF-GRNG of Figure 8: `m` independent lanes stepped in
/// lockstep (one shared indexer/controller), with rotating 4-way output
/// multiplexers.
///
/// Per hardware cycle every lane produces one number; the multiplexers
/// emit them in an order that rotates each cycle, so the serialized output
/// stream interleaves lanes and breaks the per-lane random-walk
/// correlation.
///
/// # Example
///
/// ```
/// use vibnn_grng::{GaussianSource, ParallelRlfGrng};
/// let mut g = ParallelRlfGrng::new(64, 7);
/// let batch = g.next_cycle(); // one output per lane
/// assert_eq!(batch.len(), 64);
/// let serial = g.next_gaussian(); // serialized multiplexed stream
/// assert!(serial.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelRlfGrng {
    lanes: Vec<RlfLogic>,
    /// Rotation phase of the output multiplexers.
    phase: usize,
    /// Interleaver depth in cycles (0 or 1 disables; see
    /// [`Self::without_interleaver`]).
    shuffle_depth: usize,
    /// Buffered serialized outputs (interleaved order).
    buffer: Vec<f64>,
    buffer_pos: usize,
    cycles: u64,
    /// Reused raw-cycle scratch for the interleaver (depth × lanes).
    scratch: Vec<f64>,
    /// Construction seed, the base for substream derivation.
    seed: u64,
}

/// Default interleaver depth (cycles buffered before permuted emission).
pub const DEFAULT_INTERLEAVER_DEPTH: usize = 64;

impl ParallelRlfGrng {
    /// Creates `lanes` parallel RLF lanes seeded independently from `seed`,
    /// with the default output interleaver.
    ///
    /// **Interleaver.** Each lane's popcount stream is a slow random walk
    /// (lag-1 autocorrelation ≈ 0.98), so feeding consecutive serialized
    /// outputs to nearby weights would perturb whole neurons coherently
    /// and wreck inference accuracy (the reproduction's ablation measures
    /// this directly — see `bench/ablation`). The fix is a small
    /// corner-turn buffer between GRNG and weight updater: `depth` cycles
    /// of all lanes are collected and emitted in a fixed odd-multiplier
    /// permutation, which scatters same-lane, nearby-cycle pairs far apart
    /// in the stream. Hardware cost is one `depth × lanes × 8`-bit RAM
    /// (4 KiB at the defaults).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize, seed: u64) -> Self {
        Self::with_interleaver(lanes, DEFAULT_INTERLEAVER_DEPTH, seed)
    }

    /// Creates the generator with an explicit interleaver depth
    /// (`depth <= 1` disables interleaving).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_interleaver(lanes: usize, depth: usize, seed: u64) -> Self {
        assert!(lanes > 0, "need at least one lane");
        let mut src = SplitMix64::new(seed);
        let lanes = (0..lanes)
            .map(|_| RlfLogic::random(RLF_WIDTH, RlfMode::Combined, &mut src))
            .collect();
        Self {
            lanes,
            phase: 0,
            shuffle_depth: depth.max(1),
            buffer: Vec::new(),
            buffer_pos: 0,
            cycles: 0,
            scratch: Vec::new(),
            seed,
        }
    }

    /// Creates the generator without the output interleaver — the naive
    /// serialization kept for the correlation ablation.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn without_interleaver(lanes: usize, seed: u64) -> Self {
        Self::with_interleaver(lanes, 1, seed)
    }

    /// One multiplexed hardware cycle written straight into `out`
    /// (`out.len() == lanes`); the allocation-free core of both the
    /// scalar and the block paths.
    fn cycle_into(&mut self, out: &mut [f64]) {
        let m = self.lanes.len();
        debug_assert_eq!(out.len(), m);
        // Output multiplexers: each group of 4 lanes drives 4 outputs in a
        // rotating order shared across groups (select signals are shared,
        // Figure 8). Writing lane g+j to slot g+((j-phase) mod k) is the
        // inverse of reading slot g+i from lane g+((i+phase) mod k).
        let mut g = 0;
        while g < m {
            let k = 4.min(m - g);
            let ph = self.phase % k;
            for (j, lane) in self.lanes[g..g + k].iter_mut().enumerate() {
                out[g + (j + k - ph) % k] = normalize(lane.step());
            }
            g += 4;
        }
        self.phase = (self.phase + 1) % 4;
        self.cycles += 1;
    }

    /// Generates one full interleaver block (`depth × lanes` samples)
    /// directly into `dst`, reusing the internal scratch buffer.
    ///
    /// The lanes are walked **lane-major**: each lane steps `depth` times
    /// in a row, so its 255-bit seed RAM and tap table stay cache-resident
    /// for the whole block instead of being revisited once per cycle.
    /// Because lanes are independent and the multiplexer position of lane
    /// `j` at cycle `c` is a pure function of `(j, c, phase)`, the scatter
    /// below reproduces the cycle-major emission order bit-for-bit.
    fn block_into(&mut self, dst: &mut [f64]) {
        let m = self.lanes.len();
        let depth = self.shuffle_depth;
        debug_assert_eq!(dst.len(), m * depth);
        if depth <= 1 {
            self.cycle_into(dst);
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(m * depth, 0.0);
        let p0 = self.phase;
        let mut g = 0;
        while g < m {
            let k = 4.min(m - g);
            for (j, lane) in self.lanes[g..g + k].iter_mut().enumerate() {
                for c in 0..depth {
                    let ph = (p0 + c) % 4 % k;
                    scratch[c * m + g + (j + k - ph) % k] = normalize(lane.step());
                }
            }
            g += 4;
        }
        self.phase = (p0 + depth) % 4;
        self.cycles += depth as u64;
        // Odd-multiplier permutation: bijective on [0, n) for odd k,
        // scattering nearby source indices across the whole block. The
        // source index walks in increments of k (mod n), so the loop needs
        // no multiply or divide.
        let n = scratch.len();
        let k = (n / 2 + 1) | 1;
        let mut src = 0usize;
        for slot in dst.iter_mut() {
            *slot = scratch[src];
            src += k;
            // k < n for every real geometry, but degenerate two-sample
            // blocks can overshoot twice; the loop keeps it exact.
            while src >= n {
                src -= n;
            }
        }
        self.scratch = scratch;
    }

    fn refill_buffer(&mut self) {
        let n = self.lanes.len() * self.shuffle_depth;
        let mut buffer = std::mem::take(&mut self.buffer);
        buffer.resize(n, 0.0);
        self.block_into(&mut buffer);
        self.buffer = buffer;
        self.buffer_pos = 0;
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Cycles executed (each produces `lanes()` numbers).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances one hardware cycle: all lanes step under the shared
    /// indexer; returns one normalized output per lane, in multiplexed
    /// order (groups of four, rotation advancing every cycle).
    pub fn next_cycle(&mut self) -> Vec<f64> {
        let mut out = vec![0.0; self.lanes.len()];
        self.cycle_into(&mut out);
        out
    }
}

impl GaussianSource for ParallelRlfGrng {
    fn next_gaussian(&mut self) -> f64 {
        if self.buffer_pos >= self.buffer.len() {
            self.refill_buffer();
        }
        let v = self.buffer[self.buffer_pos];
        self.buffer_pos += 1;
        v
    }

    fn fill(&mut self, out: &mut [f64]) {
        // Drain whatever the scalar path already buffered.
        let take = (self.buffer.len() - self.buffer_pos).min(out.len());
        out[..take].copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
        self.buffer_pos += take;
        let mut written = take;
        // Whole interleaver blocks bypass the buffer entirely.
        let block = self.lanes.len() * self.shuffle_depth;
        while out.len() - written >= block {
            self.block_into(&mut out[written..written + block]);
            written += block;
        }
        // Tail shorter than a block: fill the buffer, hand out a prefix.
        if written < out.len() {
            self.refill_buffer();
            let n = out.len() - written;
            out[written..].copy_from_slice(&self.buffer[..n]);
            self.buffer_pos = n;
        }
    }
}

impl StreamFork for ParallelRlfGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::with_interleaver(
            self.lanes.len(),
            self.shuffle_depth,
            substream_seed(self.seed, stream_id),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{autocorrelation, runs_test, Moments};

    #[test]
    fn single_lane_moments_are_stable() {
        let mut g = RlfGrng::from_seed(1);
        let m = Moments::from_slice(&g.take_vec(200_000));
        let (mu_err, sigma_err) = m.stability_errors();
        // Table 1 reports RLF-GRNG errors of 0.0006 / 0.0074; allow a
        // modest band around the same order.
        assert!(mu_err < 0.05, "mu error {mu_err}");
        assert!(sigma_err < 0.05, "sigma error {sigma_err}");
    }

    #[test]
    fn single_lane_stream_is_autocorrelated() {
        // Documents the motivation for the multiplexer: one lane is a
        // slow random walk.
        let mut g = RlfGrng::from_seed(2);
        let r1 = autocorrelation(&g.take_vec(20_000), 1);
        assert!(r1 > 0.8, "single-lane lag-1 autocorr {r1}");
    }

    #[test]
    fn parallel_interleaving_decorrelates() {
        let mut g = ParallelRlfGrng::new(64, 3);
        let r1 = autocorrelation(&g.take_vec(50_000), 1);
        assert!(r1.abs() < 0.1, "interleaved lag-1 autocorr {r1}");
    }

    #[test]
    fn parallel_stream_vastly_improves_runs_statistic() {
        // A single lane fails the runs test catastrophically (|z| in the
        // hundreds); the 64-lane multiplexed stream brings |z| down to the
        // near-acceptance region. Full IID behaviour is not claimed — the
        // paper's Figure 15 randomness results cover the Wallace variants;
        // Table 1 covers RLF stability (tested above). The fig15 harness
        // reports the measured RLF pass rate honestly.
        let mut single = RlfGrng::from_seed(4);
        let z_single = runs_test(&single.take_vec(100_000)).z.abs();
        let mut par = ParallelRlfGrng::new(64, 4);
        let z_par = runs_test(&par.take_vec(100_000)).z.abs();
        assert!(z_single > 50.0, "single-lane z {z_single}");
        assert!(z_par < 10.0, "parallel z {z_par}");
        assert!(z_par * 10.0 < z_single);
    }

    #[test]
    fn parallel_stream_sometimes_passes_runs_test() {
        // Over a fixed seed set, a non-trivial fraction of 100k-sample
        // streams pass at alpha = 0.05 (measured ~35-40%).
        let mut passed = 0;
        for seed in 0..8u64 {
            let mut g = ParallelRlfGrng::new(64, 1000 + seed);
            if runs_test(&g.take_vec(100_000)).passes(0.05) {
                passed += 1;
            }
        }
        assert!(passed >= 1, "expected at least one pass, got {passed}/8");
    }

    #[test]
    fn parallel_moments() {
        let mut g = ParallelRlfGrng::new(16, 5);
        let m = Moments::from_slice(&g.take_vec(200_000));
        let (mu_err, sigma_err) = m.stability_errors();
        assert!(mu_err < 0.02, "mu error {mu_err}");
        assert!(sigma_err < 0.02, "sigma error {sigma_err}");
    }

    #[test]
    fn next_cycle_emits_one_per_lane() {
        let mut g = ParallelRlfGrng::new(7, 6);
        assert_eq!(g.next_cycle().len(), 7);
        assert_eq!(g.cycles(), 1);
    }

    #[test]
    fn multiplexer_rotates_lane_order() {
        // With constant per-lane values... lanes aren't constant, so
        // instead check that two consecutive cycles don't emit lanes in
        // the same positions by comparing against a rotation-free copy.
        let mut g = ParallelRlfGrng::new(4, 8);
        let mut plain = g.clone();
        let _ = g.next_cycle();
        let c2 = g.next_cycle();
        let _ = plain.next_cycle_no_rotation_for_test();
        let p2 = plain.next_cycle_no_rotation_for_test();
        // Same lane values, different order (phase 1 vs phase 0).
        let mut sorted_a = c2.clone();
        let mut sorted_b = p2.clone();
        sorted_a.sort_by(f64::total_cmp);
        sorted_b.sort_by(f64::total_cmp);
        assert_eq!(sorted_a, sorted_b, "same multiset of lane outputs");
        assert_ne!(c2, p2, "rotation must change the emission order");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ParallelRlfGrng::new(8, 11);
        let mut b = ParallelRlfGrng::new(8, 11);
        assert_eq!(a.take_vec(100), b.take_vec(100));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = ParallelRlfGrng::new(0, 1);
    }

    #[test]
    fn block_fill_matches_scalar_stream() {
        // Sizes straddle the interleaver block (64 lanes × 64 depth would
        // be slow here; use a small config so several blocks are crossed).
        let mut scalar = ParallelRlfGrng::with_interleaver(8, 4, 13);
        let mut block = ParallelRlfGrng::with_interleaver(8, 4, 13);
        for n in [1usize, 31, 32, 33, 100, 5] {
            let via_block = block.take_vec(n);
            let via_scalar: Vec<f64> = (0..n).map(|_| scalar.next_gaussian()).collect();
            assert_eq!(via_block, via_scalar, "fill({n}) diverged");
        }
    }

    #[test]
    fn block_fill_matches_scalar_without_interleaver() {
        let mut scalar = ParallelRlfGrng::without_interleaver(6, 17);
        let mut block = ParallelRlfGrng::without_interleaver(6, 17);
        assert_eq!(block.take_vec(97), scalar.take_vec(97));
    }

    #[test]
    fn fork_substreams_are_reproducible_and_independent() {
        let parent = ParallelRlfGrng::new(8, 19);
        let mut a = parent.fork(1);
        let mut b = parent.fork(1);
        let mut c = parent.fork(2);
        let xs = a.take_vec(128);
        assert_eq!(xs, b.take_vec(128));
        assert_ne!(xs, c.take_vec(128));
        // Forking preserves the lane/interleaver geometry.
        assert_eq!(a.lanes(), 8);
    }

    #[test]
    fn single_lane_fork_preserves_mode() {
        let simple = RlfGrng::simple_mode(23);
        assert_eq!(simple.fork(0).logic().mode(), RlfMode::Simple);
        let combined = RlfGrng::from_seed(23);
        assert_eq!(combined.fork(0).logic().mode(), RlfMode::Combined);
    }

    impl ParallelRlfGrng {
        fn next_cycle_no_rotation_for_test(&mut self) -> Vec<f64> {
            let mut raw = Vec::with_capacity(self.lanes.len());
            for lane in &mut self.lanes {
                raw.push(normalize(lane.step()));
            }
            self.cycles += 1;
            raw
        }
    }
}

