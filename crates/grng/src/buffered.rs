//! Block-to-scalar adapter: serves scalar reads out of prefetched blocks.

use crate::{GaussianSource, StreamFork};

/// Default number of samples prefetched per refill.
pub const DEFAULT_BUFFER_LEN: usize = 1024;

/// Adapts a block-oriented generator to cheap scalar consumption.
///
/// Scalar callers that genuinely need one number at a time (rejection
/// loops, interactive probes) would otherwise pay the per-call dispatch
/// cost on every draw. `Buffered` pulls `block_len` samples at a time
/// through the inner generator's optimized [`GaussianSource::fill`] kernel
/// and hands them out one by one, so the amortized scalar cost approaches
/// the block cost. Buffering is transparent: the emitted stream is exactly
/// the inner generator's stream, and [`GaussianSource::fill`] calls on the
/// adapter drain the buffer before bypassing it for the bulk of the slice.
///
/// # Example
///
/// ```
/// use vibnn_grng::{Buffered, GaussianSource, ParallelRlfGrng};
/// let mut direct = ParallelRlfGrng::new(16, 9);
/// let mut buffered = Buffered::new(ParallelRlfGrng::new(16, 9));
/// for _ in 0..5000 {
///     assert_eq!(direct.next_gaussian(), buffered.next_gaussian());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Buffered<G> {
    inner: G,
    buf: Vec<f64>,
    pos: usize,
    block_len: usize,
}

impl<G: GaussianSource> Buffered<G> {
    /// Wraps `inner` with the default block length.
    pub fn new(inner: G) -> Self {
        Self::with_block_len(inner, DEFAULT_BUFFER_LEN)
    }

    /// Wraps `inner`, prefetching `block_len` samples per refill.
    ///
    /// # Panics
    ///
    /// Panics if `block_len == 0`.
    pub fn with_block_len(inner: G, block_len: usize) -> Self {
        assert!(block_len > 0, "block length must be positive");
        Self {
            inner,
            buf: Vec::new(),
            pos: 0,
            block_len,
        }
    }

    /// Samples prefetched per refill.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Samples currently buffered and not yet emitted.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Borrow the wrapped generator.
    ///
    /// Drawing from it directly would skip any samples still buffered; use
    /// [`Self::into_inner`] to reclaim it for direct consumption.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Unwraps the adapter, discarding any buffered samples.
    pub fn into_inner(self) -> G {
        self.inner
    }
}

impl<G: GaussianSource> GaussianSource for Buffered<G> {
    fn next_gaussian(&mut self) -> f64 {
        if self.pos >= self.buf.len() {
            self.buf.resize(self.block_len, 0.0);
            self.inner.fill(&mut self.buf);
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn fill(&mut self, out: &mut [f64]) {
        // Drain what was already prefetched, then stream the remainder
        // straight from the inner block kernel.
        let take = (self.buf.len() - self.pos).min(out.len());
        out[..take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
        self.pos += take;
        self.inner.fill(&mut out[take..]);
    }
}

impl<G: StreamFork> StreamFork for Buffered<G> {
    fn fork(&self, stream_id: u64) -> Self {
        Self::with_block_len(self.inner.fork(stream_id), self.block_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoxMullerGrng;

    #[test]
    fn scalar_stream_matches_inner() {
        let mut direct = BoxMullerGrng::new(3);
        let mut buffered = Buffered::with_block_len(BoxMullerGrng::new(3), 7);
        for _ in 0..100 {
            assert_eq!(direct.next_gaussian(), buffered.next_gaussian());
        }
    }

    #[test]
    fn mixed_scalar_and_block_reads_stay_in_sync() {
        let mut direct = BoxMullerGrng::new(5);
        let mut buffered = Buffered::with_block_len(BoxMullerGrng::new(5), 16);
        let a = buffered.next_gaussian();
        assert_eq!(a, direct.next_gaussian());
        let block = buffered.take_vec(50);
        assert_eq!(block, direct.take_vec(50));
        assert_eq!(buffered.next_gaussian(), direct.next_gaussian());
    }

    #[test]
    fn fork_forwards_to_inner() {
        use crate::StreamFork;
        let buffered = Buffered::new(BoxMullerGrng::new(9));
        let mut a = buffered.fork(4);
        let mut b = BoxMullerGrng::new(9).fork(4);
        assert_eq!(a.take_vec(32), b.take_vec(32));
    }

    #[test]
    #[should_panic(expected = "block length must be positive")]
    fn zero_block_panics() {
        let _ = Buffered::with_block_len(BoxMullerGrng::new(1), 0);
    }
}
