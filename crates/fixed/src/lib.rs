//! Fixed-point arithmetic for the VIBNN datapath.
//!
//! The accelerator's arithmetic units operate on `B`-bit two's-complement
//! fixed-point operands (the paper's bit-length optimization, Section 5.2 /
//! Figure 18, lands on `B = 8`). This crate provides:
//!
//! - [`QFormat`] — a signed Qm.n format descriptor (total bits, fraction
//!   bits) with saturating quantization.
//! - [`MacAccumulator`] — the wide accumulator inside a PE's MAC unit:
//!   products are accumulated at full precision and requantized once.
//! - [`choose_format`] — pick the fraction width for a value range, the
//!   calibration step used when migrating trained (µ, σ) to the FPGA.
//!
//! # Example
//!
//! ```
//! use vibnn_fixed::QFormat;
//! let q = QFormat::new(8, 6); // Q2.6: range [-2, 1.984375]
//! let raw = q.quantize(0.5);
//! assert_eq!(raw, 32);
//! assert_eq!(q.dequantize(raw), 0.5);
//! assert_eq!(q.quantize(100.0), q.max_raw()); // saturates
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A signed fixed-point format with `total` bits, of which `frac` are
/// fractional (Q(total-frac-1).(frac) plus sign).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total: u32,
    frac: u32,
}

impl QFormat {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= total <= 32` and `frac < total`.
    pub fn new(total: u32, frac: u32) -> Self {
        assert!((2..=32).contains(&total), "total bits must be in 2..=32");
        assert!(frac < total, "fraction bits must leave at least a sign bit");
        Self { total, frac }
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u32 {
        self.total
    }

    /// Fractional bit count.
    pub fn frac_bits(&self) -> u32 {
        self.frac
    }

    /// Scale factor `2^frac`.
    pub fn scale(&self) -> f64 {
        f64::from(1u32 << self.frac)
    }

    /// Largest representable raw value (`2^(total-1) - 1`).
    pub fn max_raw(&self) -> i32 {
        ((1i64 << (self.total - 1)) - 1) as i32
    }

    /// Smallest representable raw value (`-2^(total-1)`).
    pub fn min_raw(&self) -> i32 {
        (-(1i64 << (self.total - 1))) as i32
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f64 {
        f64::from(self.max_raw()) / self.scale()
    }

    /// Smallest representable real value.
    pub fn min_value(&self) -> f64 {
        f64::from(self.min_raw()) / self.scale()
    }

    /// One least-significant-bit step.
    pub fn lsb(&self) -> f64 {
        1.0 / self.scale()
    }

    /// Quantizes with round-to-nearest (ties away from zero) and
    /// saturation. NaN maps to zero.
    pub fn quantize(&self, x: f64) -> i32 {
        if x.is_nan() {
            return 0;
        }
        let scaled = x * self.scale();
        let rounded = scaled.round();
        let clamped = rounded
            .max(f64::from(self.min_raw()))
            .min(f64::from(self.max_raw()));
        clamped as i32
    }

    /// Converts a raw value back to real.
    pub fn dequantize(&self, raw: i32) -> f64 {
        f64::from(raw) / self.scale()
    }

    /// Quantizes an `f32` (convenience for NN parameters).
    pub fn quantize_f32(&self, x: f32) -> i32 {
        self.quantize(f64::from(x))
    }

    /// Saturates an arbitrary raw `i64` into this format's raw range.
    pub fn saturate(&self, raw: i64) -> i32 {
        raw.clamp(i64::from(self.min_raw()), i64::from(self.max_raw())) as i32
    }

    /// Re-scales a raw value with `from_frac` fractional bits into this
    /// format — the requantization at the end of a MAC. Rounds to nearest
    /// with **ties away from zero**, matching [`Self::quantize`]'s
    /// documented behaviour (the old `(raw + half) >> shift` rounded
    /// negative ties toward +∞, a 1-LSB disagreement on exact half-LSB
    /// negative values), and saturates. The arithmetic is carried out in
    /// `i128`, so neither the rounding bias addition nor an up-shift of a
    /// large accumulator can overflow.
    pub fn requantize(&self, raw: i64, from_frac: u32) -> i32 {
        let shift = i64::from(from_frac) - i64::from(self.frac);
        let adjusted: i128 = if shift > 127 {
            // |raw| < 2^63 ≤ half: everything rounds to zero.
            0
        } else if shift > 0 {
            let half = 1i128 << (shift - 1);
            let wide = i128::from(raw);
            if wide >= 0 {
                (wide + half) >> shift
            } else {
                -((-wide + half) >> shift)
            }
        } else {
            // Up-shift: frac < 32 bounds the shift amount well below the
            // i128 headroom over any i64 accumulator.
            i128::from(raw) << (-shift)
        };
        adjusted
            .clamp(i128::from(self.min_raw()), i128::from(self.max_raw())) as i32
    }
}

/// Picks the Q format for `total` bits that covers `[-max_abs, max_abs]`
/// with the most fraction bits possible.
///
/// Coverage uses the **asymmetric negative bound** of two's complement:
/// a format is accepted when `min_value() <= -max_abs`, i.e. when
/// `2^int_bits >= max_abs`. The positive endpoint `+max_abs` may then
/// saturate to `max_value() = 2^int_bits − lsb`, at most one LSB of
/// error — the right trade for calibration, since the alternative costs a
/// full fraction bit on *every* value. (The old `max_value() >= max_abs`
/// test hit exactly this on power-of-two ranges: `max_abs = 2.0` picked
/// Q2.5 even though Q1.6's `min_value = -2.0` covers the range, silently
/// halving resolution in the paper's B=8 sweep.)
///
/// # Panics
///
/// Panics if `max_abs` is not finite and positive.
///
/// # Example
///
/// ```
/// use vibnn_fixed::choose_format;
/// let q = choose_format(8, 1.5); // needs 1 integer bit -> Q1.6
/// assert_eq!(q.frac_bits(), 6);
/// assert!(q.max_value() >= 1.5);
/// let q2 = choose_format(8, 2.0); // exact power of two: still Q1.6
/// assert_eq!(q2.frac_bits(), 6);
/// assert_eq!(q2.min_value(), -2.0);
/// ```
pub fn choose_format(total: u32, max_abs: f64) -> QFormat {
    assert!(
        max_abs.is_finite() && max_abs > 0.0,
        "max_abs must be finite and positive"
    );
    let mut int_bits = 0u32;
    while int_bits < total - 1 {
        let frac = total - 1 - int_bits;
        let q = QFormat::new(total, frac);
        if q.min_value() <= -max_abs {
            return q;
        }
        int_bits += 1;
    }
    QFormat::new(total, 0)
}

/// The wide accumulator inside a PE's MAC unit: sums raw products of two
/// fixed-point operands exactly, then requantizes once at readout
/// (mirrors the adder-tree + accumulator structure of Figure 11).
///
/// # Example
///
/// ```
/// use vibnn_fixed::{MacAccumulator, QFormat};
/// let q = QFormat::new(8, 6);
/// let mut acc = MacAccumulator::new();
/// acc.mac(q.quantize(0.5), q.quantize(0.25));
/// acc.mac(q.quantize(1.0), q.quantize(1.0));
/// // Products carry 12 fraction bits (6 + 6).
/// let out = q.requantize(acc.raw(), 12);
/// assert!((q.dequantize(out) - 1.125).abs() <= q.lsb());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacAccumulator {
    sum: i64,
    ops: u32,
}

impl MacAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `a * b` at full precision.
    pub fn mac(&mut self, a_raw: i32, b_raw: i32) {
        self.sum += i64::from(a_raw) * i64::from(b_raw);
        self.ops += 1;
    }

    /// Adds a raw value already at the accumulator's fraction scale.
    pub fn add_raw(&mut self, raw: i64) {
        self.sum += raw;
    }

    /// Raw accumulated value.
    pub fn raw(&self) -> i64 {
        self.sum
    }

    /// Number of MAC operations performed.
    pub fn ops(&self) -> u32 {
        self.ops
    }

    /// Clears the accumulator.
    pub fn reset(&mut self) {
        self.sum = 0;
        self.ops = 0;
    }
}

/// Fixed-point ReLU on a raw value.
pub fn relu_raw(raw: i32) -> i32 {
    raw.max(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_within_half_lsb() {
        let q = QFormat::new(8, 5);
        for i in -100..=100 {
            let x = f64::from(i) / 33.0;
            if x.abs() < q.max_value() {
                let err = (q.dequantize(q.quantize(x)) - x).abs();
                assert!(err <= q.lsb() / 2.0 + 1e-12, "x={x} err={err}");
            }
        }
    }

    #[test]
    fn saturation_at_bounds() {
        let q = QFormat::new(8, 6);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -128);
        assert_eq!(q.quantize(f64::INFINITY), 127);
        assert_eq!(q.quantize(f64::NEG_INFINITY), -128);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn requantize_rounds_correctly() {
        let out = QFormat::new(8, 4);
        // 12 frac bits -> 4: shift by 8 with round-to-nearest.
        assert_eq!(out.requantize(256, 12), 1); // exactly 1 LSB
        assert_eq!(out.requantize(128, 12), 1); // half rounds up
        assert_eq!(out.requantize(127, 12), 0);
        assert_eq!(out.requantize(-129, 12), -1);
    }

    #[test]
    fn requantize_up_shifts_left() {
        let out = QFormat::new(16, 10);
        assert_eq!(out.requantize(3, 2), 3 << 8);
    }

    #[test]
    fn requantize_negative_ties_round_away_from_zero() {
        let out = QFormat::new(8, 4);
        // Half-LSB ties (shift = 8, half = 128) must mirror the positive
        // side: quantize's documented ties-away-from-zero.
        assert_eq!(out.requantize(128, 12), 1);
        assert_eq!(out.requantize(-128, 12), -1); // was 0 before the fix
        assert_eq!(out.requantize(384, 12), 2);
        assert_eq!(out.requantize(-384, 12), -2); // was -1 before the fix
        // Non-ties are unchanged in both directions.
        assert_eq!(out.requantize(-127, 12), 0);
        assert_eq!(out.requantize(-129, 12), -1);
        // Exact odd symmetry everywhere saturation is not in play.
        for raw in 0..2000i64 {
            assert_eq!(
                out.requantize(-raw, 12),
                -out.requantize(raw, 12),
                "asymmetric rounding at ±{raw}"
            );
        }
    }

    #[test]
    fn requantize_mirrors_quantize_on_tie_values() {
        // A raw value at k + 0.5 LSB of the target format must land on
        // the same integer quantize() picks for the equivalent real value.
        let out = QFormat::new(8, 4);
        for k in [-5i64, -2, -1, 0, 1, 2, 5] {
            let raw_12 = k * 256 + if k < 0 { -128 } else { 128 };
            let real = raw_12 as f64 / 4096.0;
            assert_eq!(
                out.requantize(raw_12, 12),
                out.quantize(real),
                "tie at {real}"
            );
        }
    }

    #[test]
    fn requantize_up_shift_saturates_instead_of_overflowing() {
        let out = QFormat::new(8, 6);
        // A huge accumulator up-shifted by 6 bits overflowed i64 before;
        // now it saturates cleanly.
        assert_eq!(out.requantize(i64::MAX / 2, 0), out.max_raw());
        assert_eq!(out.requantize(i64::MIN / 2, 0), out.min_raw());
        // Rounding-bias addition near i64::MAX also stays exact.
        assert_eq!(out.requantize(i64::MAX, 40), out.max_raw());
        assert_eq!(out.requantize(i64::MIN, 40), out.min_raw());
        // Absurd down-shifts collapse to zero rather than misbehaving.
        assert_eq!(out.requantize(i64::MAX, u32::MAX), 0);
    }

    #[test]
    fn mac_matches_float_within_tolerance() {
        let q = QFormat::new(8, 6);
        let xs = [0.3f64, -0.7, 0.9, 0.2, -0.1];
        let ws = [0.5f64, 0.25, -0.5, 1.0, 0.75];
        let mut acc = MacAccumulator::new();
        let mut float_dot = 0.0;
        for (x, w) in xs.iter().zip(&ws) {
            acc.mac(q.quantize(*x), q.quantize(*w));
            float_dot += x * w;
        }
        let out = q.requantize(acc.raw(), 12);
        let got = q.dequantize(out);
        assert!(
            (got - float_dot).abs() < 0.05,
            "fixed {got} vs float {float_dot}"
        );
        assert_eq!(acc.ops(), 5);
    }

    #[test]
    fn choose_format_covers_range() {
        for &(bits, max) in &[(8u32, 0.9f64), (8, 1.5), (8, 3.2), (16, 10.0), (4, 0.4)] {
            let q = choose_format(bits, max);
            assert!(q.max_value() >= max, "bits={bits} max={max} q={q:?}");
            assert_eq!(q.total_bits(), bits);
        }
    }

    #[test]
    fn choose_format_maximizes_precision() {
        // max_abs = 0.9 fits in Q0.7 for 8 bits (max 0.9921875).
        let q = choose_format(8, 0.9);
        assert_eq!(q.frac_bits(), 7);
    }

    #[test]
    fn choose_format_keeps_fraction_bit_on_power_of_two_ranges() {
        // Exact powers of two are covered by the asymmetric negative
        // bound: only +max_abs saturates, by at most one LSB.
        for &(bits, max, frac) in &[
            (8u32, 1.0f64, 7u32), // Q0.7, min -1.0 (was Q1.6 before)
            (8, 2.0, 6),          // Q1.6, min -2.0 (was Q2.5 before)
            (8, 4.0, 5),
            (16, 8.0, 12),
            (4, 1.0, 3), // Q0.3, min -1.0 (was Q1.2 before)
        ] {
            let q = choose_format(bits, max);
            assert_eq!(q.frac_bits(), frac, "bits={bits} max={max} q={q:?}");
            assert!(q.min_value() <= -max);
            // The positive endpoint loses at most one LSB to saturation.
            assert!(max - q.max_value() <= q.lsb() + 1e-12);
            assert_eq!(f64::from(q.quantize(max)), f64::from(q.max_raw()));
        }
        // Just past a power of two the next integer bit is required.
        assert_eq!(choose_format(8, 2.0 + 1e-9).frac_bits(), 5);
    }

    #[test]
    fn relu_raw_clamps() {
        assert_eq!(relu_raw(-5), 0);
        assert_eq!(relu_raw(17), 17);
    }

    #[test]
    fn lower_bit_widths_lose_precision_monotonically() {
        // The mechanism behind Figure 18: quantization error grows as B
        // shrinks.
        let value = 0.337;
        let mut last_err = 0.0;
        for bits in (3..=12).rev() {
            let q = choose_format(bits, 1.0);
            let err = (q.dequantize(q.quantize(value)) - value).abs();
            assert!(err >= last_err - 1e-12, "bits={bits}");
            last_err = err;
        }
    }

    #[test]
    #[should_panic(expected = "total bits must be in 2..=32")]
    fn oversized_format_panics() {
        let _ = QFormat::new(33, 2);
    }

    #[test]
    #[should_panic(expected = "at least a sign bit")]
    fn all_frac_panics() {
        let _ = QFormat::new(8, 8);
    }

    #[test]
    fn add_raw_and_reset() {
        let mut acc = MacAccumulator::new();
        acc.add_raw(100);
        acc.mac(2, 3);
        assert_eq!(acc.raw(), 106);
        acc.reset();
        assert_eq!(acc.raw(), 0);
        assert_eq!(acc.ops(), 0);
    }
}
