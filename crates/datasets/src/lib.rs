//! Deterministic synthetic datasets standing in for the paper's benchmarks.
//!
//! The paper evaluates on MNIST, the Parkinson Speech dataset (original and
//! a small-data "modified" split), the Diabetic Retinopathy Debrecen
//! dataset, the Thoracic Surgery dataset, and five TOX21 assays. None of
//! those files can be redistributed here, so this crate synthesizes
//! class-conditional datasets with **matched dimensionality, class count,
//! split sizes, class imbalance, and noise level** (see `DESIGN.md` for the
//! substitution rationale). Generation is fully deterministic in the seed,
//! so every experiment is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use vibnn_datasets::mnist_like;
//! let ds = mnist_like(42);
//! assert_eq!(ds.features(), 784);
//! assert_eq!(ds.classes, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod mnist;
mod split;
mod synth;
mod tabular;

pub use drift::{Drift, DriftStage, DriftStream};
pub use mnist::{mnist_like, mnist_like_with, MnistLikeSpec};
pub use split::{stratified_fraction, train_fractions};
pub use synth::SynthSpec;
pub use tabular::{
    all_disease_datasets, diabetic_retinopathy, parkinson_modified, parkinson_original,
    thoracic_surgery, tox21_assay, TOX21_ASSAYS,
};

use vibnn_nn::Matrix;

/// A labelled train/test dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (matches the paper's tables).
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Training inputs, `n_train × features`.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test inputs, `n_test × features`.
    pub test_x: Matrix,
    /// Test labels.
    pub test_y: Vec<usize>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.train_x.cols()
    }

    /// Training set size.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Test set size.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }

    /// Returns a copy whose training set is a stratified `1/denominator`
    /// fraction of the original (the Figure 16/17 small-data protocol).
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0`.
    pub fn with_train_fraction(&self, denominator: usize, seed: u64) -> Dataset {
        assert!(denominator > 0, "denominator must be positive");
        let (x, y) = stratified_fraction(
            &self.train_x,
            &self.train_y,
            1.0 / denominator as f64,
            self.classes,
            seed,
        );
        Dataset {
            name: format!("{} (1/{denominator})", self.name),
            classes: self.classes,
            train_x: x,
            train_y: y,
            test_x: self.test_x.clone(),
            test_y: self.test_y.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_shrinks_train_set() {
        let ds = parkinson_original(1);
        let small = ds.with_train_fraction(4, 2);
        assert!(small.train_len() <= ds.train_len() / 3);
        assert_eq!(small.test_len(), ds.test_len());
        assert!(small.name.contains("1/4"));
    }

    #[test]
    fn all_disease_datasets_enumerate() {
        let all = all_disease_datasets(7);
        // 4 disease datasets + 5 TOX21 assays.
        assert_eq!(all.len(), 9);
        for ds in &all {
            assert!(ds.train_len() > 0 && ds.test_len() > 0, "{}", ds.name);
            assert_eq!(ds.classes, 2, "{}", ds.name);
        }
    }
}
