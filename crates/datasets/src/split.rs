//! Stratified sub-sampling for the small-data experiments.

use vibnn_nn::{GaussianInit, Matrix};

/// The training-fraction denominators swept in Figures 16/17
/// (1/256 of the data up to the whole set).
pub const fn train_fractions() -> [usize; 9] {
    [256, 128, 64, 32, 16, 8, 4, 2, 1]
}

/// Takes a stratified random `fraction` of `(x, y)`: each class keeps
/// (approximately) `fraction` of its samples, with at least one sample per
/// class that appears in the input.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`, shapes mismatch, or a label
/// is out of range.
pub fn stratified_fraction(
    x: &Matrix,
    y: &[usize],
    fraction: f64,
    classes: usize,
    seed: u64,
) -> (Matrix, Vec<usize>) {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
    assert_eq!(x.rows(), y.len(), "row/label mismatch");
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &label) in y.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        per_class[label].push(i);
    }
    let mut rng = GaussianInit::new(seed ^ 0x57A7);
    let mut chosen: Vec<usize> = Vec::new();
    for indices in per_class.iter_mut() {
        if indices.is_empty() {
            continue;
        }
        // Deterministic Fisher-Yates, then take the prefix.
        for i in (1..indices.len()).rev() {
            let j = (rng.next_uniform() * (i + 1) as f64) as usize;
            indices.swap(i, j.min(i));
        }
        let keep = ((indices.len() as f64 * fraction).round() as usize)
            .max(1)
            .min(indices.len());
        chosen.extend_from_slice(&indices[..keep]);
    }
    chosen.sort_unstable();
    let sub_y: Vec<usize> = chosen.iter().map(|&i| y[i]).collect();
    (x.select_rows(&chosen), sub_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<usize>) {
        let mut x = Matrix::zeros(100, 2);
        let mut y = Vec::new();
        for r in 0..100 {
            x[(r, 0)] = r as f32;
            y.push(r % 4);
        }
        (x, y)
    }

    #[test]
    fn keeps_requested_fraction() {
        let (x, y) = toy();
        let (sx, sy) = stratified_fraction(&x, &y, 0.25, 4, 1);
        assert_eq!(sy.len(), 24); // hmm: 25 per class * 0.25 = 6.25 -> 6 each
        assert_eq!(sx.rows(), sy.len());
    }

    #[test]
    fn preserves_class_balance() {
        let (x, y) = toy();
        let (_, sy) = stratified_fraction(&x, &y, 0.5, 4, 2);
        let mut counts = [0usize; 4];
        for &l in &sy {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!((12..=13).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn at_least_one_per_class() {
        let (x, y) = toy();
        let (_, sy) = stratified_fraction(&x, &y, 0.001, 4, 3);
        let mut seen = [false; 4];
        for &l in &sy {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sy.len(), 4);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let (x, y) = toy();
        let (sx, sy) = stratified_fraction(&x, &y, 1.0, 4, 4);
        assert_eq!(sx.rows(), 100);
        assert_eq!(sy, y);
    }

    #[test]
    fn deterministic() {
        let (x, y) = toy();
        let a = stratified_fraction(&x, &y, 0.3, 4, 5);
        let b = stratified_fraction(&x, &y, 0.3, 4, 5);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.data(), b.0.data());
    }

    #[test]
    fn fractions_table_is_descending() {
        let f = train_fractions();
        for w in f.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(*f.last().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1]")]
    fn zero_fraction_panics() {
        let (x, y) = toy();
        let _ = stratified_fraction(&x, &y, 0.0, 4, 1);
    }
}
