//! Synthetic stand-ins for the paper's disease-diagnosis datasets
//! (Table 7), with matched dimensionality, split sizes, class balance,
//! and noise profiles.
//!
//! | Dataset | Features | Train/Test | Notes |
//! |---|---|---|---|
//! | Parkinson Speech (original)   | 26  | 832/208  | moderate noise |
//! | Parkinson Speech (modified)   | 26  | 120/920  | tiny train split (small-data scenario) |
//! | Diabetic Retinopathy Debrecen | 19  | 920/231  | hard, label noise |
//! | Thoracic Surgery              | 16  | 376/94   | 15% positive class |
//! | TOX21 (5 assays)              | 801 | 6000/600 | ~5–12% positives, hard |

use crate::{Dataset, SynthSpec};

/// The five TOX21 assays reported in Table 7.
pub const TOX21_ASSAYS: [&str; 5] = [
    "NR.AhR",
    "SR.ARE",
    "SR.ATAD5",
    "SR.MMP",
    "SR.P53",
];

/// Parkinson Speech dataset (original split): 26 features, 2 classes.
pub fn parkinson_original(seed: u64) -> Dataset {
    SynthSpec::new("Parkinson Speech Dataset (Original)", 26, 2, 832, 208)
        .with_separability(0.55)
        .with_label_noise(0.03)
        .generate(seed ^ 0x0001)
}

/// Parkinson Speech dataset (modified split): most data moved from train
/// to test to create the paper's small-data training scenario.
pub fn parkinson_modified(seed: u64) -> Dataset {
    SynthSpec::new("Parkinson Speech Dataset (Modified)", 26, 2, 120, 920)
        .with_separability(0.55)
        .with_label_noise(0.03)
        .generate(seed ^ 0x0002)
}

/// Diabetic Retinopathy Debrecen dataset: 19 features, 1151 samples.
pub fn diabetic_retinopathy(seed: u64) -> Dataset {
    SynthSpec::new("Diabetics Retinopathy Debrecen Dataset", 19, 2, 920, 231)
        .with_separability(0.28)
        .with_label_noise(0.12)
        .generate(seed ^ 0x0003)
}

/// Thoracic Surgery dataset: 16 features, 470 samples, ~15% positives.
pub fn thoracic_surgery(seed: u64) -> Dataset {
    SynthSpec::new("Thoracic Surgery Dataset", 16, 2, 376, 94)
        .with_separability(0.4)
        .with_label_noise(0.08)
        .with_class_weights(&[0.85, 0.15])
        .generate(seed ^ 0x0004)
}

/// One TOX21 assay: 801 dense chemical features, heavy class imbalance.
///
/// # Panics
///
/// Panics if `assay` is not one of [`TOX21_ASSAYS`].
pub fn tox21_assay(assay: &str, seed: u64) -> Dataset {
    let idx = TOX21_ASSAYS
        .iter()
        .position(|&a| a == assay)
        .unwrap_or_else(|| panic!("unknown TOX21 assay {assay}"));
    // Per-assay difficulty spread (the paper's accuracies range 83-94%).
    let (sep, noise, pos) = match idx {
        0 => (0.16, 0.05, 0.12), // NR.AhR
        1 => (0.10, 0.12, 0.16), // SR.ARE (hardest in Table 7)
        2 => (0.20, 0.04, 0.08), // SR.ATAD5
        3 => (0.14, 0.08, 0.14), // SR.MMP
        _ => (0.18, 0.05, 0.10), // SR.P53
    };
    SynthSpec::new(
        &format!("TOX21:{assay}"),
        801,
        2,
        6000,
        600,
    )
    .with_separability(sep)
    .with_label_noise(noise)
    .with_class_weights(&[1.0 - pos, pos])
    .generate(seed ^ (0x1000 + idx as u64))
}

/// All nine Table 7 datasets in the paper's row order.
pub fn all_disease_datasets(seed: u64) -> Vec<Dataset> {
    let mut v = vec![
        parkinson_modified(seed),
        parkinson_original(seed),
        diabetic_retinopathy(seed),
        thoracic_surgery(seed),
    ];
    for assay in TOX21_ASSAYS {
        v.push(tox21_assay(assay, seed));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_the_real_datasets() {
        let seed = 1;
        assert_eq!(parkinson_original(seed).features(), 26);
        assert_eq!(parkinson_modified(seed).features(), 26);
        assert_eq!(diabetic_retinopathy(seed).features(), 19);
        assert_eq!(thoracic_surgery(seed).features(), 16);
        assert_eq!(tox21_assay("NR.AhR", seed).features(), 801);
    }

    #[test]
    fn modified_parkinson_is_small_data() {
        let seed = 2;
        let orig = parkinson_original(seed);
        let modi = parkinson_modified(seed);
        assert!(modi.train_len() < orig.train_len() / 4);
        assert!(modi.test_len() > orig.test_len());
    }

    #[test]
    fn thoracic_is_imbalanced() {
        let ds = thoracic_surgery(3);
        let pos = ds.train_y.iter().filter(|&&y| y == 1).count() as f64;
        let frac = pos / ds.train_len() as f64;
        assert!((0.05..0.30).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn tox21_assays_are_distinct() {
        let a = tox21_assay("NR.AhR", 5);
        let b = tox21_assay("SR.P53", 5);
        assert_ne!(a.train_x.data()[..100], b.train_x.data()[..100]);
        assert_ne!(a.name, b.name);
    }

    #[test]
    #[should_panic(expected = "unknown TOX21 assay")]
    fn unknown_assay_panics() {
        let _ = tox21_assay("NOPE", 1);
    }
}
