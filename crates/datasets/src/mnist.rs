//! An MNIST-like synthetic image dataset (28×28 grayscale, 10 classes).
//!
//! Each class has a fixed smooth "digit prototype" (a low-pass-filtered
//! random field); samples add per-sample smooth deformation noise plus
//! pixel noise, clamped to `[0, 1]`. The result exercises the exact
//! 784-200-200-10 network, small-data curves, quantization, and hardware
//! path of the paper's MNIST experiments.

use vibnn_nn::{GaussianInit, Matrix};

use crate::Dataset;

/// Image side length (28, as MNIST).
pub const SIDE: usize = 28;

/// Configuration for [`mnist_like`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnistLikeSpec {
    /// Training set size (paper MNIST: 60k; default scaled to 8k for
    /// tractable CPU training — documented in DESIGN.md).
    pub train_size: usize,
    /// Test set size (default 2k).
    pub test_size: usize,
    /// Strength of per-sample deformation noise.
    pub deform: f64,
    /// Strength of iid pixel noise.
    pub pixel_noise: f64,
}

impl Default for MnistLikeSpec {
    fn default() -> Self {
        Self {
            train_size: 8_000,
            test_size: 2_000,
            deform: 0.8,
            pixel_noise: 0.22,
        }
    }
}

/// Generates the default MNIST-like dataset.
pub fn mnist_like(seed: u64) -> Dataset {
    mnist_like_with(MnistLikeSpec::default(), seed)
}

/// Generates an MNIST-like dataset with an explicit spec.
///
/// # Panics
///
/// Panics if either split size is zero.
pub fn mnist_like_with(spec: MnistLikeSpec, seed: u64) -> Dataset {
    assert!(
        spec.train_size > 0 && spec.test_size > 0,
        "split sizes must be positive"
    );
    let mut rng = GaussianInit::new(seed ^ 0x3141_5926);
    // Compress the prototypes toward their global mean so classes overlap
    // and small-data training genuinely overfits (without this, nearest
    // prototype is learnable from a handful of samples and the Figure
    // 16/17 small-data effect cannot appear).
    let mut prototypes: Vec<Vec<f32>> = (0..10).map(|_| smooth_field(&mut rng, 3)).collect();
    let mut mean = vec![0.0f32; SIDE * SIDE];
    for p in &prototypes {
        for (m, &v) in mean.iter_mut().zip(p) {
            *m += v / 10.0;
        }
    }
    for p in &mut prototypes {
        for (v, &m) in p.iter_mut().zip(&mean) {
            *v = m + 0.6 * (*v - m);
        }
    }

    let make = |n: usize, rng: &mut GaussianInit| {
        let mut x = Matrix::zeros(n, SIDE * SIDE);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let class = (rng.next_uniform() * 10.0) as usize % 10;
            let deform = smooth_field(rng, 2);
            let row = x.row_mut(r);
            for (i, v) in row.iter_mut().enumerate() {
                let base = prototypes[class][i];
                let d = spec.deform as f32 * (deform[i] - 0.5);
                let p = spec.pixel_noise as f32 * rng.next_gaussian() as f32;
                *v = (base + d + p).clamp(0.0, 1.0);
            }
            y.push(class);
        }
        (x, y)
    };
    let (train_x, train_y) = make(spec.train_size, &mut rng);
    let (test_x, test_y) = make(spec.test_size, &mut rng);
    Dataset {
        name: "MNIST-like (synthetic)".to_owned(),
        classes: 10,
        train_x,
        train_y,
        test_x,
        test_y,
    }
}

/// A smooth random field in `[0, 1]`: white noise box-blurred `passes`
/// times and min-max normalized.
fn smooth_field(rng: &mut GaussianInit, passes: usize) -> Vec<f32> {
    let mut field: Vec<f32> = (0..SIDE * SIDE)
        .map(|_| rng.next_gaussian() as f32)
        .collect();
    for _ in 0..passes {
        let mut next = vec![0.0f32; SIDE * SIDE];
        for r in 0..SIDE {
            for c in 0..SIDE {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for dr in -1i32..=1 {
                    for dc in -1i32..=1 {
                        let rr = r as i32 + dr;
                        let cc = c as i32 + dc;
                        if (0..SIDE as i32).contains(&rr) && (0..SIDE as i32).contains(&cc) {
                            sum += field[rr as usize * SIDE + cc as usize];
                            cnt += 1.0;
                        }
                    }
                }
                next[r * SIDE + c] = sum / cnt;
            }
        }
        field = next;
    }
    let min = field.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = field.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    for v in &mut field {
        *v = (*v - min) / span;
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_mnist() {
        let ds = mnist_like_with(
            MnistLikeSpec {
                train_size: 100,
                test_size: 50,
                ..MnistLikeSpec::default()
            },
            1,
        );
        assert_eq!(ds.features(), 784);
        assert_eq!(ds.classes, 10);
        assert_eq!(ds.train_len(), 100);
        assert_eq!(ds.test_len(), 50);
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = mnist_like_with(
            MnistLikeSpec {
                train_size: 50,
                test_size: 10,
                ..MnistLikeSpec::default()
            },
            2,
        );
        assert!(ds
            .train_x
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn all_ten_classes_appear() {
        let ds = mnist_like_with(
            MnistLikeSpec {
                train_size: 500,
                test_size: 10,
                ..MnistLikeSpec::default()
            },
            3,
        );
        let mut seen = [false; 10];
        for &y in &ds.train_y {
            seen[y] = true;
        }
        assert!(seen.iter().all(|&s| s), "class coverage {seen:?}");
    }

    #[test]
    fn deterministic() {
        let spec = MnistLikeSpec {
            train_size: 20,
            test_size: 5,
            ..MnistLikeSpec::default()
        };
        let a = mnist_like_with(spec, 7);
        let b = mnist_like_with(spec, 7);
        assert_eq!(a.train_x.data(), b.train_x.data());
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn classes_are_distinguishable_by_nearest_prototype() {
        // Sanity: a trivial nearest-class-mean classifier should beat
        // chance comfortably, otherwise the dataset carries no signal.
        let ds = mnist_like_with(
            MnistLikeSpec {
                train_size: 1000,
                test_size: 300,
                ..MnistLikeSpec::default()
            },
            5,
        );
        let d = ds.features();
        let mut means = vec![vec![0.0f64; d]; 10];
        let mut counts = [0usize; 10];
        for (r, &y) in ds.train_y.iter().enumerate() {
            counts[y] += 1;
            for f in 0..d {
                means[y][f] += f64::from(ds.train_x[(r, f)]);
            }
        }
        for (m, n) in means.iter_mut().zip(counts) {
            for v in m.iter_mut() {
                *v /= n.max(1) as f64;
            }
        }
        let mut correct = 0;
        for (r, &y) in ds.test_y.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, m) in means.iter().enumerate() {
                let dist: f64 = (0..d)
                    .map(|f| (f64::from(ds.test_x[(r, f)]) - m[f]).powi(2))
                    .sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == y {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / ds.test_len() as f64;
        assert!(acc > 0.5, "nearest-mean accuracy {acc}");
    }
}
