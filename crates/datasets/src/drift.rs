//! Deterministic concept-drift generators over [`SynthSpec`] streams.
//!
//! A [`DriftStream`] wraps a [`SynthSpec`] plus a list of drift stages and
//! turns them into an endless sequence of labelled batches: batch `t` is a
//! pure function of `(spec, seed, t, n)`, so any online run driven by the
//! stream can be replayed bit-for-bit. Three drift kinds are provided,
//! each ramping in linearly over a configurable window:
//!
//! - [`Drift::CovariateShift`] — translates every input along a fixed
//!   seeded direction (the class boundary moves; labels do not).
//! - [`Drift::LabelFlip`] — flips labels to a uniformly random other
//!   class with a ramping probability (label noise appears).
//! - [`Drift::Rotation`] — rotates consecutive feature pairs by a ramping
//!   angle (the input geometry shears while marginals stay Gaussian).
//!
//! Stages compose: they are applied in the order registered, each with its
//! own onset and ramp, so a stream can rotate early and shift late.
//!
//! # Example
//!
//! ```
//! use vibnn_datasets::{Drift, DriftStream, SynthSpec};
//!
//! let spec = SynthSpec::new("live", 4, 2, 10, 10).with_separability(2.0);
//! let stream = DriftStream::new(spec, 7)
//!     .with(Drift::CovariateShift { magnitude: 3.0 }, 10, 5)
//!     .with(Drift::LabelFlip { rate: 0.1 }, 20, 1);
//!
//! let (x_before, _) = stream.batch(0, 8);   // pre-drift
//! let (x_after, _) = stream.batch(30, 8);   // both stages fully ramped
//! assert_eq!(x_before.rows(), 8);
//! // Replayable: the same step is bit-identical every time.
//! assert_eq!(x_after.data(), stream.batch(30, 8).0.data());
//! ```

use vibnn_nn::{GaussianInit, Matrix};

use crate::synth::{stream_seed, SynthSpec};

/// One kind of concept drift applied to a streamed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drift {
    /// Translate every row by `magnitude · d` where `d` is a fixed unit
    /// direction drawn from the stream seed. Moves the covariate
    /// distribution away from the prototypes without touching labels.
    CovariateShift {
        /// Shift length (in feature-space units) at full ramp.
        magnitude: f64,
    },
    /// Flip each label to a uniformly random *other* class with the given
    /// probability at full ramp. The flip draws come from a per-step
    /// substream, so flips are independent across steps but replayable.
    LabelFlip {
        /// Flip probability at full ramp, in `[0, 1]`.
        rate: f64,
    },
    /// Rotate each consecutive feature pair `(2k, 2k+1)` by the given
    /// angle at full ramp. An odd trailing feature is left unchanged.
    Rotation {
        /// Rotation angle in radians at full ramp.
        radians: f64,
    },
}

/// A [`Drift`] with its onset step and linear ramp length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStage {
    /// The drift transformation.
    pub drift: Drift,
    /// First step at which the drift has any effect.
    pub start: u64,
    /// Number of steps over which the effect ramps linearly from 0 to
    /// full strength; `0` means a hard switch at `start`.
    pub ramp: u64,
}

impl DriftStage {
    /// Ramp progress in `[0, 1]` at stream step `step`.
    pub fn progress(&self, step: u64) -> f64 {
        if step < self.start {
            0.0
        } else if self.ramp == 0 {
            1.0
        } else {
            (((step - self.start) as f64) / self.ramp as f64).min(1.0)
        }
    }
}

/// An endless labelled data stream with composable, seeded drift.
///
/// See [`Drift`] for the drift catalog and the crate docs for an
/// example. Every
/// batch is a pure function of `(spec, seed, step, n)`; the stream holds
/// no mutable state, so it can be shared freely across threads.
#[derive(Debug, Clone)]
pub struct DriftStream {
    spec: SynthSpec,
    seed: u64,
    stages: Vec<DriftStage>,
}

impl DriftStream {
    /// Wraps `spec` as a drift-free stream seeded by `seed`.
    pub fn new(spec: SynthSpec, seed: u64) -> Self {
        Self { spec, seed, stages: Vec::new() }
    }

    /// Registers a drift stage starting at step `start` and ramping over
    /// `ramp` steps. Stages apply in registration order.
    pub fn with(mut self, drift: Drift, start: u64, ramp: u64) -> Self {
        if let Drift::LabelFlip { rate } = drift {
            assert!((0.0..=1.0).contains(&rate), "flip rate must be in [0, 1]");
        }
        self.stages.push(DriftStage { drift, start, ramp });
        self
    }

    /// The underlying dataset specification.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// The registered drift stages, in application order.
    pub fn stages(&self) -> &[DriftStage] {
        &self.stages
    }

    /// The stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates batch `step` of the stream: the base rows from
    /// [`SynthSpec::generate_batch`], then every registered stage at its
    /// ramp progress for `step`. Pure in `(self, step, n)`.
    pub fn batch(&self, step: u64, n: usize) -> (Matrix, Vec<usize>) {
        let (mut x, mut y) = self.spec.generate_batch(self.seed, step, n);
        for (i, stage) in self.stages.iter().enumerate() {
            let p = stage.progress(step);
            if p <= 0.0 {
                continue;
            }
            match stage.drift {
                Drift::CovariateShift { magnitude } => {
                    let dir = self.shift_direction(i);
                    let scale = magnitude * p;
                    for r in 0..n {
                        for (f, d) in dir.iter().enumerate() {
                            x[(r, f)] += (scale * d) as f32;
                        }
                    }
                }
                Drift::LabelFlip { rate } => {
                    let classes = self.spec.classes();
                    let mut rng = GaussianInit::new(
                        stream_seed(self.seed ^ 0xF11B_0000 ^ i as u64, step),
                    );
                    let eff = rate * p;
                    for label in y.iter_mut() {
                        let flip = rng.next_uniform();
                        let target = rng.next_uniform();
                        if flip < eff {
                            let shift = 1 + (target * (classes - 1) as f64) as usize;
                            *label = (*label + shift.min(classes - 1)) % classes;
                        }
                    }
                }
                Drift::Rotation { radians } => {
                    let angle = radians * p;
                    let (sin, cos) = angle.sin_cos();
                    for r in 0..n {
                        let mut f = 0;
                        while f + 1 < self.spec.features() {
                            let a = f64::from(x[(r, f)]);
                            let b = f64::from(x[(r, f + 1)]);
                            x[(r, f)] = (cos * a - sin * b) as f32;
                            x[(r, f + 1)] = (sin * a + cos * b) as f32;
                            f += 2;
                        }
                    }
                }
            }
        }
        (x, y)
    }

    /// Unit direction for covariate-shift stage `i`, fixed per stream.
    fn shift_direction(&self, stage: usize) -> Vec<f64> {
        let mut rng = GaussianInit::new(self.seed ^ 0xD81F_7000 ^ stage as u64);
        let raw: Vec<f64> =
            (0..self.spec.features()).map(|_| rng.next_gaussian()).collect();
        let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        raw.into_iter().map(|v| v / norm).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec::new("d", 6, 3, 10, 10).with_separability(2.0)
    }

    #[test]
    fn driftless_stream_matches_raw_batches() {
        let s = DriftStream::new(spec(), 9);
        let (x, y) = s.batch(4, 20);
        let (rx, ry) = spec().generate_batch(9, 4, 20);
        assert_eq!(x.data(), rx.data());
        assert_eq!(y, ry);
    }

    #[test]
    fn batches_are_replayable() {
        let s = DriftStream::new(spec(), 3)
            .with(Drift::CovariateShift { magnitude: 2.0 }, 2, 4)
            .with(Drift::Rotation { radians: 0.7 }, 5, 3)
            .with(Drift::LabelFlip { rate: 0.3 }, 8, 0);
        for step in [0, 3, 6, 9, 40] {
            let (xa, ya) = s.batch(step, 16);
            let (xb, yb) = s.batch(step, 16);
            assert_eq!(xa.data(), xb.data(), "step {step}");
            assert_eq!(ya, yb, "step {step}");
        }
    }

    #[test]
    fn ramp_progress_is_linear_and_clamped() {
        let stage = DriftStage { drift: Drift::Rotation { radians: 1.0 }, start: 10, ramp: 4 };
        assert_eq!(stage.progress(9), 0.0);
        assert_eq!(stage.progress(10), 0.0);
        assert_eq!(stage.progress(12), 0.5);
        assert_eq!(stage.progress(14), 1.0);
        assert_eq!(stage.progress(99), 1.0);
        let hard = DriftStage { drift: Drift::LabelFlip { rate: 0.5 }, start: 3, ramp: 0 };
        assert_eq!(hard.progress(2), 0.0);
        assert_eq!(hard.progress(3), 1.0);
    }

    #[test]
    fn covariate_shift_translates_means() {
        let s = DriftStream::new(spec(), 11).with(Drift::CovariateShift { magnitude: 5.0 }, 4, 0);
        let (before, _) = s.batch(0, 400);
        let (after, _) = s.batch(4, 400);
        let mean = |x: &Matrix| -> Vec<f64> {
            let mut m = vec![0.0f64; x.cols()];
            for r in 0..x.rows() {
                for f in 0..x.cols() {
                    m[f] += f64::from(x[(r, f)]);
                }
            }
            m.iter().map(|v| v / x.rows() as f64).collect()
        };
        let (a, b) = (mean(&before), mean(&after));
        let dist: f64 =
            a.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
        assert!((dist - 5.0).abs() < 1.0, "mean moved by {dist}, expected ~5");
    }

    #[test]
    fn label_flip_changes_only_labels() {
        let s = DriftStream::new(spec(), 13).with(Drift::LabelFlip { rate: 0.5 }, 0, 0);
        let clean = DriftStream::new(spec(), 13);
        let (x, y) = s.batch(2, 500);
        let (cx, cy) = clean.batch(2, 500);
        assert_eq!(x.data(), cx.data(), "inputs untouched");
        let flips = y.iter().zip(&cy).filter(|(a, b)| a != b).count();
        let frac = flips as f64 / y.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "flip fraction {frac}");
    }

    #[test]
    fn rotation_preserves_pair_norms() {
        let s = DriftStream::new(spec(), 17).with(Drift::Rotation { radians: 1.2 }, 1, 0);
        let clean = DriftStream::new(spec(), 17);
        let (x, _) = s.batch(5, 50);
        let (cx, _) = clean.batch(5, 50);
        assert_ne!(x.data(), cx.data(), "rotation must change inputs");
        for r in 0..50 {
            for f in (0..5).step_by(2) {
                let n1 = f64::from(x[(r, f)]).powi(2) + f64::from(x[(r, f + 1)]).powi(2);
                let n0 = f64::from(cx[(r, f)]).powi(2) + f64::from(cx[(r, f + 1)]).powi(2);
                assert!((n1 - n0).abs() < 1e-3, "row {r} pair {f}: {n1} vs {n0}");
            }
        }
    }
}
