//! Class-conditional Gaussian dataset synthesis.

use vibnn_nn::{GaussianInit, Matrix};

use crate::Dataset;

/// Derives the per-step substream seed for [`SynthSpec::generate_batch`]:
/// a splitmix64-style finalizer over `(seed, step)` so consecutive steps
/// land in statistically independent regions of the generator's state
/// space while staying a pure function of the pair.
pub(crate) fn stream_seed(seed: u64, step: u64) -> u64 {
    let mut z = seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Specification for a synthetic tabular classification dataset.
///
/// Samples are drawn as `x = separability · p_c + N(0, I)` where `p_c` is a
/// fixed random prototype for class `c`; labels are flipped with
/// probability `label_noise`; class frequencies follow `class_weights`.
///
/// # Example
///
/// ```
/// use vibnn_datasets::SynthSpec;
/// let ds = SynthSpec::new("toy", 8, 2, 100, 40).generate(1);
/// assert_eq!(ds.train_len(), 100);
/// assert_eq!(ds.features(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SynthSpec {
    name: String,
    features: usize,
    classes: usize,
    train_size: usize,
    test_size: usize,
    separability: f64,
    label_noise: f64,
    class_weights: Vec<f64>,
}

impl SynthSpec {
    /// Creates a balanced spec with default separability 1.2 and no label
    /// noise.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub fn new(
        name: &str,
        features: usize,
        classes: usize,
        train_size: usize,
        test_size: usize,
    ) -> Self {
        assert!(features > 0, "need at least one feature");
        assert!(classes >= 2, "need at least two classes");
        assert!(train_size > 0 && test_size > 0, "split sizes must be positive");
        Self {
            name: name.to_owned(),
            features,
            classes,
            train_size,
            test_size,
            separability: 1.2,
            label_noise: 0.0,
            class_weights: vec![1.0; classes],
        }
    }

    /// Sets the prototype scale (larger = easier problem).
    ///
    /// # Panics
    ///
    /// Panics if `s <= 0`.
    pub fn with_separability(mut self, s: f64) -> Self {
        assert!(s > 0.0, "separability must be positive");
        self.separability = s;
        self
    }

    /// Sets the label-flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 0.5]`.
    pub fn with_label_noise(mut self, p: f64) -> Self {
        assert!((0.0..=0.5).contains(&p), "label noise must be in [0, 0.5]");
        self.label_noise = p;
        self
    }

    /// Sets unnormalized class sampling weights (for imbalanced datasets
    /// like Thoracic Surgery / TOX21).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the class count or any weight is
    /// non-positive.
    pub fn with_class_weights(mut self, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), self.classes, "one weight per class");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        self.class_weights = weights.to_vec();
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// The data stream (class draws, features) and the label-noise stream
    /// use independent RNGs, so datasets generated with and without noise
    /// share identical inputs and differ only by the injected label flips.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = GaussianInit::new(seed ^ 0x5EED_0000);
        let mut noise_rng = GaussianInit::new(seed ^ 0x0015_EED5);
        // Fixed prototypes.
        let prototypes: Vec<Vec<f64>> = (0..self.classes)
            .map(|_| (0..self.features).map(|_| rng.next_gaussian()).collect())
            .collect();
        let total: f64 = self.class_weights.iter().sum();
        let cum: Vec<f64> = self
            .class_weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();

        let make = |n: usize, rng: &mut GaussianInit, noise_rng: &mut GaussianInit| {
            let mut x = Matrix::zeros(n, self.features);
            let mut y = Vec::with_capacity(n);
            for r in 0..n {
                let u = rng.next_uniform();
                let class = cum.iter().position(|&c| u < c).unwrap_or(self.classes - 1);
                for f in 0..self.features {
                    let v = self.separability * prototypes[class][f] + rng.next_gaussian();
                    x[(r, f)] = v as f32;
                }
                let flip = noise_rng.next_uniform();
                let target = noise_rng.next_uniform();
                let label = if self.label_noise > 0.0 && flip < self.label_noise {
                    // Flip to a uniformly random *other* class.
                    let shift = 1 + (target * (self.classes - 1) as f64) as usize;
                    (class + shift.min(self.classes - 1)) % self.classes
                } else {
                    class
                };
                y.push(label);
            }
            (x, y)
        };
        let (train_x, train_y) = make(self.train_size, &mut rng, &mut noise_rng);
        let (test_x, test_y) = make(self.test_size, &mut rng, &mut noise_rng);
        Dataset {
            name: self.name.clone(),
            classes: self.classes,
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }

    /// Feature dimensionality of generated rows.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Generates batch number `step` of an endless data stream.
    ///
    /// The class prototypes are the same fixed function of `seed` as
    /// [`SynthSpec::generate`] uses — every step samples the *same*
    /// underlying distribution — while the per-row class draws, feature
    /// noise, and label noise come from a per-step substream, so
    /// producing batch `t` is `O(n)` regardless of `t` and no two steps
    /// repeat rows. `(seed, step, n)` fully determines the output.
    ///
    /// # Example
    ///
    /// ```
    /// use vibnn_datasets::SynthSpec;
    /// let spec = SynthSpec::new("stream", 4, 2, 10, 10);
    /// let (x, y) = spec.generate_batch(7, 0, 16);
    /// assert_eq!((x.rows(), x.cols(), y.len()), (16, 4, 16));
    /// // Replayable: the same step yields bit-identical rows.
    /// assert_eq!(x.data(), spec.generate_batch(7, 0, 16).0.data());
    /// // Distinct steps yield fresh rows.
    /// assert_ne!(x.data(), spec.generate_batch(7, 1, 16).0.data());
    /// ```
    pub fn generate_batch(&self, seed: u64, step: u64, n: usize) -> (Matrix, Vec<usize>) {
        let mut proto_rng = GaussianInit::new(seed ^ 0x5EED_0000);
        let prototypes: Vec<Vec<f64>> = (0..self.classes)
            .map(|_| (0..self.features).map(|_| proto_rng.next_gaussian()).collect())
            .collect();
        let total: f64 = self.class_weights.iter().sum();
        let cum: Vec<f64> = self
            .class_weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();
        let sub = stream_seed(seed, step);
        let mut rng = GaussianInit::new(sub);
        let mut noise_rng = GaussianInit::new(sub ^ 0x0015_EED5);
        let mut x = Matrix::zeros(n, self.features);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let u = rng.next_uniform();
            let class = cum.iter().position(|&c| u < c).unwrap_or(self.classes - 1);
            for f in 0..self.features {
                let v = self.separability * prototypes[class][f] + rng.next_gaussian();
                x[(r, f)] = v as f32;
            }
            let flip = noise_rng.next_uniform();
            let target = noise_rng.next_uniform();
            let label = if self.label_noise > 0.0 && flip < self.label_noise {
                let shift = 1 + (target * (self.classes - 1) as f64) as usize;
                (class + shift.min(self.classes - 1)) % self.classes
            } else {
                class
            };
            y.push(label);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::new("d", 4, 3, 50, 20);
        let a = spec.generate(9);
        let b = spec.generate(9);
        assert_eq!(a.train_x.data(), b.train_x.data());
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = SynthSpec::new("d", 4, 2, 50, 20);
        assert_ne!(spec.generate(1).train_x.data(), spec.generate(2).train_x.data());
    }

    #[test]
    fn class_weights_skew_distribution() {
        let spec = SynthSpec::new("imb", 4, 2, 2000, 100).with_class_weights(&[9.0, 1.0]);
        let ds = spec.generate(3);
        let ones = ds.train_y.iter().filter(|&&y| y == 1).count();
        let frac = ones as f64 / ds.train_len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "minority fraction {frac}");
    }

    #[test]
    fn higher_separability_is_linearly_separable_more_often() {
        // Nearest-prototype classification should be near-perfect for
        // large separability and near-chance for tiny separability.
        let acc_of = |sep: f64| {
            let ds = SynthSpec::new("s", 16, 2, 10, 500)
                .with_separability(sep)
                .generate(11);
            // Nearest-centroid on train means.
            let mut centroids = vec![vec![0.0f64; 16]; 2];
            let mut counts = [0usize; 2];
            for (r, &y) in ds.train_y.iter().enumerate() {
                counts[y] += 1;
                for f in 0..16 {
                    centroids[y][f] += f64::from(ds.train_x[(r, f)]);
                }
            }
            for (c, n) in centroids.iter_mut().zip(counts) {
                for v in c.iter_mut() {
                    *v /= n.max(1) as f64;
                }
            }
            let mut correct = 0;
            for (r, &y) in ds.test_y.iter().enumerate() {
                let d: Vec<f64> = centroids
                    .iter()
                    .map(|c| {
                        (0..16)
                            .map(|f| (f64::from(ds.test_x[(r, f)]) - c[f]).powi(2))
                            .sum()
                    })
                    .collect();
                if (d[0] < d[1]) == (y == 0) {
                    correct += 1;
                }
            }
            correct as f64 / ds.test_len() as f64
        };
        let hard = acc_of(0.1);
        let easy = acc_of(3.0);
        assert!(easy > 0.95, "easy {easy}");
        assert!(hard < easy - 0.2, "hard {hard} vs easy {easy}");
    }

    #[test]
    fn label_noise_injects_errors() {
        let clean = SynthSpec::new("c", 8, 2, 3000, 10)
            .with_separability(5.0)
            .generate(5);
        let noisy = SynthSpec::new("n", 8, 2, 3000, 10)
            .with_separability(5.0)
            .with_label_noise(0.2)
            .generate(5);
        // With identical seed and huge separability, labels differ only by
        // the injected noise (~20%).
        let diffs = clean
            .train_y
            .iter()
            .zip(&noisy.train_y)
            .filter(|(a, b)| a != b)
            .count();
        let frac = diffs as f64 / clean.train_len() as f64;
        assert!((frac - 0.2).abs() < 0.1, "flip fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_panics() {
        let _ = SynthSpec::new("x", 4, 1, 10, 10);
    }

    #[test]
    fn stream_batches_are_deterministic_and_distinct() {
        let spec = SynthSpec::new("s", 6, 3, 10, 10);
        let (x0, y0) = spec.generate_batch(42, 0, 32);
        let (x0b, y0b) = spec.generate_batch(42, 0, 32);
        assert_eq!(x0.data(), x0b.data());
        assert_eq!(y0, y0b);
        let (x1, _) = spec.generate_batch(42, 1, 32);
        assert_ne!(x0.data(), x1.data());
        let (xo, _) = spec.generate_batch(43, 0, 32);
        assert_ne!(x0.data(), xo.data());
    }

    #[test]
    fn stream_shares_prototypes_with_generate() {
        // Huge separability: rows are dominated by the prototypes, so
        // per-class means of streamed batches must sit near the means of
        // the offline dataset drawn from the same seed.
        let spec = SynthSpec::new("p", 8, 2, 4000, 10).with_separability(8.0);
        let ds = spec.generate(5);
        let (bx, by) = spec.generate_batch(5, 3, 4000);
        let mean_of = |x: &Matrix, y: &[usize], class: usize| -> Vec<f64> {
            let mut m = vec![0.0f64; 8];
            let mut n = 0usize;
            for (r, &lbl) in y.iter().enumerate() {
                if lbl == class {
                    n += 1;
                    for f in 0..8 {
                        m[f] += f64::from(x[(r, f)]);
                    }
                }
            }
            m.iter().map(|v| v / n.max(1) as f64).collect()
        };
        for class in 0..2 {
            let a = mean_of(&ds.train_x, &ds.train_y, class);
            let b = mean_of(&bx, &by, class);
            for f in 0..8 {
                assert!((a[f] - b[f]).abs() < 0.5, "class {class} feature {f}: {} vs {}", a[f], b[f]);
            }
        }
    }
}
