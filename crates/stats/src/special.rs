//! Special functions: erf/erfc, ln-gamma, regularized incomplete gamma,
//! and the Kolmogorov distribution tail.
//!
//! Implementations follow the classic numerical-methods formulations
//! (rational approximations and series/continued-fraction expansions) and
//! are accurate to well beyond what the statistical tests require.

/// Error function `erf(x)`, max absolute error ≈ 1.2e-7 (Abramowitz &
/// Stegun 7.1.26 composed with one Newton refinement via erfc symmetry).
///
/// # Example
///
/// ```
/// let v = vibnn_stats::special::erf(1.0);
/// assert!((v - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)` with ~1e-12 relative accuracy,
/// using the expansion from Numerical Recipes (`erfccheb`-style rational
/// Chebyshev fit).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        erfc_core(x)
    } else {
        2.0 - erfc_core(-x)
    }
}

fn erfc_core(x: f64) -> f64 {
    // W. J. Cody style rational approximation via the NR "erfc" fit:
    // erfc(x) ~= t*exp(-x^2 + P(t)), t = 2/(2+x) for x >= 0.
    let t = 2.0 / (2.0 + x);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    t * (-x * x + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)` via series (x < a+1) or
/// continued fraction (x >= a+1). Used for the χ² CDF.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// χ² cumulative distribution with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
pub fn chi_square_cdf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "chi-square needs at least 1 dof");
    gamma_p(f64::from(k) / 2.0, x / 2.0)
}

/// Kolmogorov distribution complementary CDF
/// `Q(λ) = 2 Σ_{j>=1} (-1)^{j-1} exp(-2 j² λ²)` — the asymptotic p-value of
/// the KS statistic `λ = √n · D`.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-9, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn erfc_symmetry() {
        for i in -30..=30 {
            let x = f64::from(i) / 10.0;
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(2.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_cdf_reference() {
        // Median of chi2 with k=1 is ~0.4549; CDF(3.841, 1) ~= 0.95.
        assert!((chi_square_cdf(3.841, 1) - 0.95).abs() < 1e-3);
        // CDF(k, k) around 0.55-0.65 for moderate k.
        let v = chi_square_cdf(10.0, 10);
        assert!((0.5..0.7).contains(&v), "{v}");
    }

    #[test]
    fn kolmogorov_q_reference() {
        // Q(1.36) ~= 0.049 (the classic 5% critical value).
        let q = kolmogorov_q(1.36);
        assert!((q - 0.049).abs() < 0.002, "{q}");
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(3.0) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_zero_panics() {
        let _ = ln_gamma(0.0);
    }
}
