//! Sample autocorrelation — used to quantify the correlation drawbacks of
//! Wallace-generated streams and single-lane RLF streams (paper §2.3, §4.2).

/// Lag-`k` sample autocorrelation of `xs`.
///
/// Returns `r_k = Σ (x_i - m)(x_{i+k} - m) / Σ (x_i - m)²`.
///
/// # Panics
///
/// Panics if `k >= xs.len()` or `xs` has fewer than 2 elements.
///
/// # Example
///
/// ```
/// use vibnn_stats::autocorrelation;
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r1 = autocorrelation(&xs, 1);
/// assert!(r1 < -0.9); // alternating -> strongly negative lag-1
/// ```
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    assert!(xs.len() >= 2, "need at least two samples");
    assert!(k < xs.len(), "lag {k} out of range for {} samples", xs.len());
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - k)
        .map(|i| (xs[i] - mean) * (xs[i + k] - mean))
        .sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let xs = crate::test_normal_samples(1000, 41);
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_samples_have_near_zero_autocorr() {
        let xs = crate::test_normal_samples(50_000, 43);
        for k in [1, 2, 5, 10] {
            let r = autocorrelation(&xs, k);
            assert!(r.abs() < 0.02, "lag {k}: {r}");
        }
    }

    #[test]
    fn random_walk_has_high_autocorr() {
        let mut acc = 0.0;
        let xs: Vec<f64> = crate::test_normal_samples(10_000, 47)
            .into_iter()
            .map(|e| {
                acc += e;
                acc
            })
            .collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn constant_sequence_returns_zero() {
        assert_eq!(autocorrelation(&[2.0; 50], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn excessive_lag_panics() {
        let _ = autocorrelation(&[1.0, 2.0], 2);
    }
}
