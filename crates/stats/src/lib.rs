//! Statistical machinery for evaluating Gaussian random number generators.
//!
//! This crate provides everything the paper's GRNG evaluation (Table 1 and
//! Figure 15) needs:
//!
//! - [`normal`] — standard normal pdf/cdf/quantile (Beasley–Springer–Moro
//!   and Acklam inverses), plus the special functions they need.
//! - [`Moments`] — streaming mean/variance/skewness/kurtosis (Welford).
//! - [`runs_test`] — the Wald–Wolfowitz runs test with the same semantics
//!   as Matlab's `runstest` (used by the paper's randomness experiment).
//! - [`ks_test_normal`] / [`ks_test`] — one-sample Kolmogorov–Smirnov.
//! - [`chi_square_gof_normal`] — χ² goodness of fit with equiprobable bins.
//! - [`anderson_darling_normal`] — Anderson–Darling A² against N(0,1).
//! - [`autocorrelation`] — lag-k sample autocorrelation.
//! - [`Histogram`] — fixed-width binning for distribution shape checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autocorr;
mod chi_square;
mod histogram;
mod ks;
mod moments;
pub mod normal;
mod runs;
pub mod special;

pub use autocorr::autocorrelation;
pub use chi_square::{chi_square_gof_normal, ChiSquareOutcome};
pub use histogram::Histogram;
pub use ks::{ks_test, ks_test_normal, KsOutcome};
pub use moments::Moments;
pub use runs::{runs_test, RunsOutcome};

/// Anderson–Darling A² statistic against the standard normal, with the
/// small-sample correction `A*² = A²(1 + 0.75/n + 2.25/n²)`.
///
/// Returns the corrected statistic; values above ~1.09 reject normality at
/// α = 0.01 for the fully-specified case.
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
pub fn anderson_darling_normal(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let n = xs.len() as f64;
    let mut s = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = normal::cdf(x).clamp(1e-300, 1.0 - 1e-16);
        let f_rev = normal::cdf(xs[xs.len() - 1 - i]).clamp(1e-300, 1.0 - 1e-16);
        s += (2.0 * (i as f64) + 1.0) * (f.ln() + (1.0 - f_rev).ln());
    }
    let a2 = -n - s / n;
    a2 * (1.0 + 0.75 / n + 2.25 / (n * n))
}

#[cfg(test)]
pub(crate) fn test_normal_samples(n: usize, seed: u64) -> Vec<f64> {
    // Box-Muller over a local SplitMix64 (kept inline so the stats crate
    // stays dependency-free).
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    };
    (0..n)
        .map(|_| {
            let u1: f64 = next().max(1e-12);
            let u2: f64 = next();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anderson_darling_accepts_normal() {
        let xs = test_normal_samples(5000, 42);
        let a2 = anderson_darling_normal(&xs);
        assert!(a2 < 2.5, "A*2 {a2} too large for genuine normal data");
    }

    #[test]
    fn anderson_darling_rejects_uniform() {
        let xs: Vec<f64> = (0..5000).map(|i| (i as f64 + 0.5) / 5000.0).collect();
        let a2 = anderson_darling_normal(&xs);
        assert!(a2 > 10.0, "A*2 {a2} should reject uniforms");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn anderson_darling_empty_panics() {
        let _ = anderson_darling_normal(&[]);
    }
}
