//! Streaming sample moments (Welford / Terriberry update).

/// Accumulates mean, variance, skewness and excess kurtosis in one pass.
///
/// Used by the Table 1 reproduction to measure a GRNG's µ/σ "stability
/// errors" — the absolute deviation of the generated distribution's mean
/// and standard deviation from the target N(0, 1).
///
/// # Example
///
/// ```
/// use vibnn_stats::Moments;
/// let mut m = Moments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert!((m.mean() - 2.5).abs() < 1e-12);
/// assert!((m.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        for &x in xs {
            m.push(x);
        }
        m
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Returns 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n-1` denominator). 0 if fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness (g1). 0 if fewer than three observations.
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 == 0.0 {
            0.0
        } else {
            let n = self.n as f64;
            (n.sqrt() * self.m3) / self.m2.powf(1.5)
        }
    }

    /// Excess kurtosis (g2). 0 if fewer than four observations.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 4 || self.m2 == 0.0 {
            0.0
        } else {
            let n = self.n as f64;
            n * self.m4 / (self.m2 * self.m2) - 3.0
        }
    }

    /// The paper's Table 1 metrics: `(|mean - 0|, |std - 1|)` against the
    /// standard normal.
    pub fn stability_errors(&self) -> (f64, f64) {
        (self.mean().abs(), (self.std_dev() - 1.0).abs())
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta.powi(4) * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta * delta * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
        let m = Moments::from_slice(&xs);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((m.mean() - mean).abs() < 1e-10);
        assert!((m.variance() - var).abs() < 1e-8);
    }

    #[test]
    fn normal_samples_have_expected_moments() {
        let xs = crate::test_normal_samples(200_000, 7);
        let m = Moments::from_slice(&xs);
        assert!(m.mean().abs() < 0.01, "mean {}", m.mean());
        assert!((m.std_dev() - 1.0).abs() < 0.01, "std {}", m.std_dev());
        assert!(m.skewness().abs() < 0.05, "skew {}", m.skewness());
        assert!(m.excess_kurtosis().abs() < 0.1, "kurt {}", m.excess_kurtosis());
    }

    #[test]
    fn stability_errors_shape() {
        let m = Moments::from_slice(&[-1.0, 1.0]);
        let (mu_err, sigma_err) = m.stability_errors();
        assert!((mu_err - 0.0).abs() < 1e-12);
        // std of {-1, 1} with n-1 denom is sqrt(2).
        assert!((sigma_err - (2.0f64.sqrt() - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 3.0).collect();
        let (a, b) = xs.split_at(123);
        let mut ma = Moments::from_slice(a);
        let mb = Moments::from_slice(b);
        ma.merge(&mb);
        let full = Moments::from_slice(&xs);
        assert!((ma.mean() - full.mean()).abs() < 1e-10);
        assert!((ma.variance() - full.variance()).abs() < 1e-8);
        assert!((ma.skewness() - full.skewness()).abs() < 1e-6);
        assert!((ma.excess_kurtosis() - full.excess_kurtosis()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Moments::from_slice(&[1.0, 2.0]);
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);
    }

    #[test]
    fn constant_samples_have_zero_variance() {
        let m = Moments::from_slice(&[5.0; 100]);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!(m.variance().abs() < 1e-12);
        assert_eq!(m.skewness(), 0.0);
    }
}
