//! Fixed-width histogram for distribution shape checks and figure output.

/// A histogram over `[lo, hi)` with equal-width bins; values outside the
/// range are counted in saturating edge bins.
///
/// # Example
///
/// ```
/// use vibnn_stats::Histogram;
/// let mut h = Histogram::new(-4.0, 4.0, 8);
/// h.add(0.1);
/// h.add(10.0); // clamps into the last bin
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[4], 1);
/// assert_eq!(h.counts()[7], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation (clamped to the edge bins).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let pos = (x - self.lo) / (self.hi - self.lo) * bins as f64;
        let idx = (pos.floor().max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Adds every value in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + w * (i as f64 + 0.5))
            .collect()
    }

    /// Normalized densities (counts / (total * bin width)).
    pub fn densities(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / (total * w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend(&[0.1, 0.3, 0.6, 0.9]);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn densities_integrate_to_one() {
        let mut h = Histogram::new(-4.0, 4.0, 64);
        h.extend(&crate::test_normal_samples(10_000, 31));
        let w = 8.0 / 64.0;
        let integral: f64 = h.densities().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_histogram_matches_pdf() {
        let mut h = Histogram::new(-4.0, 4.0, 32);
        h.extend(&crate::test_normal_samples(200_000, 33));
        let centers = h.centers();
        for (c, d) in centers.iter().zip(h.densities()) {
            let expected = crate::normal::pdf(*c);
            assert!(
                (d - expected).abs() < 0.02,
                "bin at {c}: density {d} vs pdf {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
