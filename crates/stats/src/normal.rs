//! Standard normal distribution: pdf, cdf, and two quantile (inverse CDF)
//! implementations.
//!
//! The Beasley–Springer–Moro inverse is exposed separately because the
//! paper's taxonomy (Section 2.3) lists CDF-inversion as GRNG category 1;
//! `vibnn-grng`'s inversion generator uses it directly.

use crate::special::erfc;

/// Standard normal probability density `φ(x)`.
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)` via erfc (~1e-12 accurate).
///
/// # Example
///
/// ```
/// assert!((vibnn_stats::normal::cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (quantile), Acklam's algorithm refined by
/// one Halley step — relative error below 1e-13 over (0, 1).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Halley refinement.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Beasley–Springer–Moro inverse normal CDF — the rational approximation
/// historically used in hardware/finance CDF-inversion samplers (accuracy
/// ~3e-9 in the central region).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn quantile_bsm(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let mut r = if y > 0.0 { 1.0 - p } else { p };
        r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rk = 1.0;
        for &c in C.iter().skip(1) {
            rk *= r;
            x += c * rk;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((pdf(1.5) - pdf(-1.5)).abs() < 1e-15);
    }

    #[test]
    fn cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447461),
            (-1.0, 0.1586552539),
            (1.959963985, 0.975),
            (3.0, 0.9986501020),
        ];
        for (x, want) in cases {
            assert!((cdf(x) - want).abs() < 1e-8, "cdf({x}) = {}", cdf(x));
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..200 {
            let p = f64::from(i) / 200.0;
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn quantile_tails() {
        assert!((quantile(0.001) + 3.0902323062).abs() < 1e-6);
        assert!((quantile(0.999) - 3.0902323062).abs() < 1e-6);
    }

    #[test]
    fn bsm_close_to_exact() {
        for i in 1..100 {
            let p = f64::from(i) / 100.0;
            assert!(
                (quantile_bsm(p) - quantile(p)).abs() < 5e-4,
                "p={p}: bsm={} exact={}",
                quantile_bsm(p),
                quantile(p)
            );
        }
    }

    #[test]
    fn bsm_is_antisymmetric() {
        for i in 1..50 {
            let p = f64::from(i) / 100.0;
            assert!((quantile_bsm(p) + quantile_bsm(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(1.0);
    }
}
