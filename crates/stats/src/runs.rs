//! Wald–Wolfowitz runs test, matching Matlab's `runstest` semantics.
//!
//! The paper's Figure 15 generates 100,000 numbers per trial, applies
//! `runstest`, repeats 1000 times, and reports the pass rate. `runstest`
//! dichotomizes the sequence around its median (dropping exact ties),
//! counts runs, and compares against the normal approximation of the run
//! count distribution.

/// Result of a runs test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunsOutcome {
    /// Number of observed runs.
    pub runs: u64,
    /// Observations above the median (after dropping ties).
    pub n_above: u64,
    /// Observations below the median.
    pub n_below: u64,
    /// Z statistic (with continuity correction).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

impl RunsOutcome {
    /// Whether the sequence passes (fails to reject randomness) at
    /// significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Runs the Wald–Wolfowitz runs test around the sample median.
///
/// Values exactly equal to the median are discarded, as in Matlab's
/// `runstest(x)`. Uses the normal approximation with a ±0.5 continuity
/// correction.
///
/// # Panics
///
/// Panics if fewer than 10 non-tied observations remain (the normal
/// approximation would be meaningless).
///
/// # Example
///
/// ```
/// use vibnn_stats::runs_test;
/// // A strictly alternating sequence has the maximum number of runs and
/// // decisively fails the test.
/// let xs: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let out = runs_test(&xs);
/// assert!(!out.passes(0.05));
/// ```
pub fn runs_test(samples: &[f64]) -> RunsOutcome {
    let median = sample_median(samples);
    let signs: Vec<bool> = samples
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    assert!(
        signs.len() >= 10,
        "runs test needs at least 10 non-tied observations, got {}",
        signs.len()
    );
    let n_above = signs.iter().filter(|&&s| s).count() as u64;
    let n_below = signs.len() as u64 - n_above;
    let mut runs = 1u64;
    for w in signs.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let n1 = n_above as f64;
    let n2 = n_below as f64;
    let n = n1 + n2;
    let expected = 2.0 * n1 * n2 / n + 1.0;
    let variance = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
    let sd = variance.max(1e-300).sqrt();
    // Continuity correction toward the mean.
    let diff = runs as f64 - expected;
    let corrected = if diff.abs() <= 0.5 {
        0.0
    } else if diff > 0.0 {
        diff - 0.5
    } else {
        diff + 0.5
    };
    let z = corrected / sd;
    let p_value = 2.0 * (1.0 - crate::normal::cdf(z.abs()));
    RunsOutcome {
        runs,
        n_above,
        n_below,
        z,
        p_value,
    }
}

fn sample_median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_normals_pass() {
        let xs = crate::test_normal_samples(10_000, 3);
        let out = runs_test(&xs);
        assert!(out.passes(0.05), "p = {}", out.p_value);
    }

    #[test]
    fn pass_rate_near_one_minus_alpha() {
        // Under H0 the test should pass ~95% of trials at alpha = 0.05.
        let trials = 200u32;
        let mut passed = 0u32;
        for t in 0..trials {
            let xs = crate::test_normal_samples(2000, 1000 + u64::from(t));
            if runs_test(&xs).passes(0.05) {
                passed += 1;
            }
        }
        let rate = f64::from(passed) / f64::from(trials);
        assert!(rate > 0.88 && rate <= 1.0, "pass rate {rate}");
    }

    #[test]
    fn alternating_sequence_fails() {
        let xs: Vec<f64> = (0..500)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(!runs_test(&xs).passes(0.05));
    }

    #[test]
    fn monotone_sequence_fails() {
        // A ramp has exactly 2 runs around its median: far too few.
        let xs: Vec<f64> = (0..500).map(f64::from).collect();
        let out = runs_test(&xs);
        assert_eq!(out.runs, 2);
        assert!(!out.passes(0.05));
    }

    #[test]
    fn strongly_autocorrelated_walk_fails() {
        // Random-walk-like sequences (the failure mode of a single RLF
        // lane) should be detected.
        let mut x = 0.0;
        let base = crate::test_normal_samples(5000, 9);
        let xs: Vec<f64> = base
            .iter()
            .map(|&e| {
                x = 0.995 * x + 0.1 * e;
                x
            })
            .collect();
        assert!(!runs_test(&xs).passes(0.05));
    }

    #[test]
    fn ties_are_dropped() {
        // Half the values sit exactly at the median value; they must be
        // discarded rather than counted as a side.
        let mut xs = vec![0.0; 50];
        xs.extend(crate::test_normal_samples(100, 5));
        let out = runs_test(&xs);
        assert_eq!(out.n_above + out.n_below, 100);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn too_few_samples_panic() {
        let _ = runs_test(&[1.0, -1.0, 2.0]);
    }
}
