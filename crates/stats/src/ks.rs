//! One-sample Kolmogorov–Smirnov test.

use crate::special::kolmogorov_q;

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// Supremum distance between empirical and theoretical CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
}

impl KsOutcome {
    /// Whether the sample passes (fails to reject) at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// KS test of `samples` against an arbitrary continuous CDF.
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
///
/// # Example
///
/// ```
/// use vibnn_stats::ks_test;
/// let xs: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
/// let out = ks_test(&xs, |x| x.clamp(0.0, 1.0)); // exactly uniform
/// assert!(out.passes(0.05));
/// ```
pub fn ks_test(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsOutcome {
    assert!(!samples.is_empty(), "KS test needs samples");
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    // Asymptotic p-value with the Stephens finite-n refinement.
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsOutcome {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// KS test against the standard normal N(0, 1).
pub fn ks_test_normal(samples: &[f64]) -> KsOutcome {
    ks_test(samples, crate::normal::cdf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normals_pass_against_normal() {
        let xs = crate::test_normal_samples(20_000, 11);
        let out = ks_test_normal(&xs);
        assert!(out.passes(0.05), "p={}", out.p_value);
        assert!(out.statistic < 0.02);
    }

    #[test]
    fn uniforms_fail_against_normal() {
        let xs: Vec<f64> = (0..2000).map(|i| (f64::from(i) / 1000.0) - 1.0).collect();
        let out = ks_test_normal(&xs);
        assert!(!out.passes(0.05));
    }

    #[test]
    fn shifted_normals_fail() {
        let xs: Vec<f64> = crate::test_normal_samples(5000, 13)
            .into_iter()
            .map(|x| x + 0.2)
            .collect();
        assert!(!ks_test_normal(&xs).passes(0.05));
    }

    #[test]
    fn scaled_normals_fail() {
        let xs: Vec<f64> = crate::test_normal_samples(20_000, 17)
            .into_iter()
            .map(|x| x * 1.1)
            .collect();
        assert!(!ks_test_normal(&xs).passes(0.05));
    }

    #[test]
    fn statistic_is_small_for_exact_quantiles() {
        // Plugging in exact normal quantiles gives the minimal possible D.
        let n = 1000;
        let xs: Vec<f64> = (0..n)
            .map(|i| crate::normal::quantile((i as f64 + 0.5) / n as f64))
            .collect();
        let out = ks_test_normal(&xs);
        assert!(out.statistic <= 0.5 / n as f64 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_panics() {
        let _ = ks_test_normal(&[]);
    }
}
