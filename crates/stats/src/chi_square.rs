//! χ² goodness-of-fit test against the standard normal using equiprobable
//! bins.

use crate::special::chi_square_cdf;

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareOutcome {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (`bins - 1`).
    pub dof: u32,
    /// p-value.
    pub p_value: f64,
}

impl ChiSquareOutcome {
    /// Whether the sample passes (fails to reject) at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// χ² GOF test of `samples` against N(0, 1) with `bins` equiprobable bins.
///
/// Bin edges are normal quantiles so each bin has expected count `n/bins`.
///
/// # Panics
///
/// Panics if `bins < 2` or the expected count per bin is below 5 (the
/// classic validity rule).
///
/// # Example
///
/// ```
/// use vibnn_stats::chi_square_gof_normal;
/// // Exact normal quantiles produce a tiny statistic.
/// let n = 10_000;
/// let xs: Vec<f64> = (0..n)
///     .map(|i| vibnn_stats::normal::quantile((i as f64 + 0.5) / n as f64))
///     .collect();
/// let out = chi_square_gof_normal(&xs, 20);
/// assert!(out.passes(0.05));
/// ```
pub fn chi_square_gof_normal(samples: &[f64], bins: usize) -> ChiSquareOutcome {
    assert!(bins >= 2, "need at least two bins");
    let n = samples.len();
    let expected = n as f64 / bins as f64;
    assert!(
        expected >= 5.0,
        "expected count per bin {expected} < 5; use fewer bins or more samples"
    );
    let edges: Vec<f64> = (1..bins)
        .map(|i| crate::normal::quantile(i as f64 / bins as f64))
        .collect();
    let mut counts = vec![0u64; bins];
    for &x in samples {
        // Binary search for the bin.
        let idx = edges.partition_point(|&e| e < x);
        counts[idx] += 1;
    }
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (bins - 1) as u32;
    let p_value = 1.0 - chi_square_cdf(statistic, dof);
    ChiSquareOutcome {
        statistic,
        dof,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normals_pass() {
        let xs = crate::test_normal_samples(50_000, 21);
        let out = chi_square_gof_normal(&xs, 32);
        assert!(out.passes(0.01), "p={} stat={}", out.p_value, out.statistic);
        assert_eq!(out.dof, 31);
    }

    #[test]
    fn uniforms_fail() {
        let xs: Vec<f64> = (0..5000)
            .map(|i| (f64::from(i) / 2500.0) - 1.0)
            .collect();
        assert!(!chi_square_gof_normal(&xs, 16).passes(0.05));
    }

    #[test]
    fn biased_mean_fails() {
        let xs: Vec<f64> = crate::test_normal_samples(50_000, 23)
            .into_iter()
            .map(|x| x + 0.1)
            .collect();
        assert!(!chi_square_gof_normal(&xs, 32).passes(0.05));
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn one_bin_panics() {
        let _ = chi_square_gof_normal(&[0.0; 100], 1);
    }

    #[test]
    #[should_panic(expected = "< 5")]
    fn sparse_bins_panic() {
        let _ = chi_square_gof_normal(&[0.0; 20], 10);
    }
}
