//! A plain feed-forward MLP with ReLU hidden layers, softmax output,
//! optional dropout, and Adam training — the paper's FNN baseline.

use crate::{
    accuracy, cross_entropy_loss, relu, relu_backward, softmax_rows, Adam, Dense, GaussianInit,
    Matrix, Optimizer,
};

/// Architecture and regularization configuration for [`Mlp`].
///
/// # Example
///
/// ```
/// use vibnn_nn::MlpConfig;
/// let cfg = MlpConfig::new(&[784, 200, 200, 10]).with_dropout(0.5);
/// assert_eq!(cfg.layer_sizes(), &[784, 200, 200, 10]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    sizes: Vec<usize>,
    dropout: f32,
    lr: f32,
}

impl MlpConfig {
    /// Creates a configuration from layer sizes (input, hidden…, output).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes or any size is zero.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Self {
            sizes: sizes.to_vec(),
            dropout: 0.0,
            lr: 1e-3,
        }
    }

    /// The paper's MNIST architecture: 784-200-200-10.
    pub fn paper_mnist() -> Self {
        Self::new(&[784, 200, 200, 10])
    }

    /// Enables dropout on hidden activations with keep-probability
    /// `1 - p` (the Table 6 baseline is "FNN + Dropout").
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn with_dropout(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout must be in [0,1)");
        self.dropout = p;
        self
    }

    /// Sets the Adam learning rate (default 1e-3).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn with_lr(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
        self
    }

    /// Layer sizes.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Dropout probability.
    pub fn dropout(&self) -> f32 {
        self.dropout
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean minibatch loss over the epoch.
    pub loss: f64,
    /// Training accuracy over the epoch's predictions.
    pub accuracy: f64,
}

/// A feed-forward network: `Dense → ReLU (→ dropout) → … → Dense → softmax`.
#[derive(Debug, Clone)]
pub struct Mlp {
    cfg: MlpConfig,
    layers: Vec<Dense>,
    opt: Adam,
    slots: Vec<(usize, usize)>, // (weight slot, bias slot) per layer
    rng: GaussianInit,
}

impl Mlp {
    /// Builds the network with He-initialized weights.
    pub fn new(cfg: MlpConfig, seed: u64) -> Self {
        let mut layers = Vec::new();
        for (i, w) in cfg.sizes.windows(2).enumerate() {
            layers.push(Dense::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)));
        }
        let mut opt = Adam::new(cfg.lr);
        let slots = layers
            .iter()
            .map(|l| {
                (
                    opt.slot(l.in_dim(), l.out_dim()),
                    opt.slot(1, l.out_dim()),
                )
            })
            .collect();
        Self {
            cfg,
            layers,
            opt,
            slots,
            rng: GaussianInit::new(seed ^ 0xD00D),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// Borrow the layers (e.g. for quantization).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Class probabilities for a batch (inference mode: no dropout).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_inference(&h);
            if i < last {
                relu(&mut h);
            }
        }
        softmax_rows(&mut h);
        h
    }

    /// Predicted class labels for a batch.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let probs = self.predict_proba(x);
        (0..probs.rows())
            .map(|r| {
                probs
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Test accuracy on a labelled set.
    pub fn evaluate(&self, x: &Matrix, labels: &[usize]) -> f64 {
        accuracy(&self.predict_proba(x), labels)
    }

    /// One optimization step on a minibatch; returns the batch loss.
    ///
    /// Forward activations live in a per-call workspace that the backward
    /// pass reads in place — no `post_relu` clones, no cached-input copies
    /// inside the layers, and optimizer updates are applied in place
    /// through [`Optimizer::update_matrix`]. The first layer skips its
    /// (unused) input gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(x.rows(), labels.len(), "batch size mismatch");
        let last = self.layers.len() - 1;
        // Forward. `acts[i]` holds layer i's output (post-ReLU, and
        // post-dropout when enabled — relu_backward only inspects signs,
        // and dropped entries are re-zeroed by the mask on the way back,
        // so masked activations back-propagate identically).
        let mut acts: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut masks: Vec<Option<Matrix>> = Vec::with_capacity(last);
        for i in 0..self.layers.len() {
            let input = if i == 0 { x } else { &acts[i - 1] };
            let mut h = self.layers[i].forward_inference(input);
            if i < last {
                relu(&mut h);
                if self.cfg.dropout > 0.0 {
                    let keep = 1.0 - self.cfg.dropout;
                    let mut mask = Matrix::zeros(h.rows(), h.cols());
                    for v in mask.data_mut() {
                        *v = if (self.rng.next_uniform() as f32) < keep {
                            1.0 / keep
                        } else {
                            0.0
                        };
                    }
                    h.hadamard_assign(&mask);
                    masks.push(Some(mask));
                } else {
                    masks.push(None);
                }
            }
            acts.push(h);
        }
        let mut probs = acts.pop().expect("at least one layer");
        softmax_rows(&mut probs);
        let loss = cross_entropy_loss(&probs, labels);

        // Backward: dL/dlogits = (probs - onehot) / batch.
        let batch = x.rows() as f32;
        let mut grad = probs;
        for (r, &label) in labels.iter().enumerate() {
            grad[(r, label)] -= 1.0;
        }
        grad.scale(1.0 / batch);
        for i in (0..self.layers.len()).rev() {
            if i < last {
                if let Some(mask) = &masks[i] {
                    grad.hadamard_assign(mask);
                }
                relu_backward(&mut grad, &acts[i]);
            }
            let input = if i == 0 { x } else { &acts[i - 1] };
            if i == 0 {
                self.layers[i].accumulate_param_grads(input, &grad);
            } else {
                grad = self.layers[i].backward_from(input, &grad);
            }
        }
        // Apply updates in place.
        self.opt.tick();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (wslot, bslot) = self.slots[i];
            let (w, gw, b, gb) = layer.params_mut();
            self.opt.update_matrix(wslot, w, gw);
            self.opt.update(bslot, b, gb);
        }
        loss
    }

    /// One full epoch over `(x, labels)` with the given batch size and a
    /// deterministic shuffle; returns loss/accuracy statistics.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or shapes are inconsistent.
    pub fn train_epoch(&mut self, x: &Matrix, labels: &[usize], batch: usize) -> TrainReport {
        assert!(batch > 0, "batch size must be positive");
        assert_eq!(x.rows(), labels.len(), "dataset size mismatch");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates with the internal deterministic RNG.
        for i in (1..n).rev() {
            let j = (self.rng.next_uniform() * (i + 1) as f64) as usize;
            order.swap(i, j.min(i));
        }
        let mut total_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch) {
            let bx = x.select_rows(chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            total_loss += self.train_batch(&bx, &by);
            batches += 1;
        }
        TrainReport {
            loss: total_loss / batches.max(1) as f64,
            accuracy: self.evaluate(x, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem: class = argmax of two features.
    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let a = rng.next_gaussian() as f32;
            let b = rng.next_gaussian() as f32;
            x[(r, 0)] = a;
            x[(r, 1)] = b;
            y.push(usize::from(b > a));
        }
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = toy_data(512, 3);
        let mut mlp = Mlp::new(MlpConfig::new(&[2, 16, 2]).with_lr(0.01), 7);
        let before = mlp.evaluate(&x, &y);
        for _ in 0..30 {
            mlp.train_epoch(&x, &y, 64);
        }
        let after = mlp.evaluate(&x, &y);
        assert!(after > 0.95, "accuracy {after} (was {before})");
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = toy_data(256, 5);
        let mut mlp = Mlp::new(MlpConfig::new(&[2, 8, 2]).with_lr(0.01), 9);
        let first = mlp.train_epoch(&x, &y, 32).loss;
        for _ in 0..10 {
            mlp.train_epoch(&x, &y, 32);
        }
        let last = mlp.train_epoch(&x, &y, 32).loss;
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn dropout_training_still_learns() {
        let (x, y) = toy_data(512, 11);
        let mut mlp = Mlp::new(
            MlpConfig::new(&[2, 32, 2]).with_dropout(0.3).with_lr(0.01),
            13,
        );
        for _ in 0..40 {
            mlp.train_epoch(&x, &y, 64);
        }
        assert!(mlp.evaluate(&x, &y) > 0.9);
    }

    #[test]
    fn predict_matches_proba_argmax() {
        let (x, y) = toy_data(32, 17);
        let mlp = Mlp::new(MlpConfig::new(&[2, 4, 2]), 19);
        let labels = mlp.predict(&x);
        let probs = mlp.predict_proba(&x);
        assert_eq!(labels.len(), y.len());
        for (r, &l) in labels.iter().enumerate() {
            let row = probs.row(r);
            assert!(row[l] >= row[1 - l]);
        }
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = toy_data(64, 23);
        let mut a = Mlp::new(MlpConfig::new(&[2, 4, 2]), 29);
        let mut b = Mlp::new(MlpConfig::new(&[2, 4, 2]), 29);
        let ra = a.train_epoch(&x, &y, 16);
        let rb = b.train_epoch(&x, &y, 16);
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_layer_config_panics() {
        let _ = MlpConfig::new(&[10]);
    }
}
