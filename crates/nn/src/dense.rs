//! Fully-connected layer with cached activations for backprop.

use crate::{GaussianInit, Matrix};

/// A dense (fully-connected) layer `y = x·W + b`.
///
/// Holds the parameters, their gradients, and the cached forward input so
/// `backward` can compute `dW = xᵀ·dy`.
///
/// # Example
///
/// ```
/// use vibnn_nn::{Dense, Matrix};
/// let mut layer = Dense::new(3, 2, 1);
/// let x = Matrix::zeros(4, 3);
/// let y = layer.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Vec<f32>,
    grad_weight: Matrix,
    grad_bias: Vec<f32>,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates the layer with He-normal weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut init = GaussianInit::new(seed);
        Self {
            weight: init.he_matrix(in_dim, out_dim),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Borrow the weights.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow the biases.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable parameter access for optimizers: `(weight, grad_weight,
    /// bias, grad_bias)`.
    pub fn params_mut(&mut self) -> (&mut Matrix, &Matrix, &mut Vec<f32>, &Vec<f32>) {
        (
            &mut self.weight,
            &self.grad_weight,
            &mut self.bias,
            &self.grad_bias,
        )
    }

    /// Forward pass, caching the input for the subsequent backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight);
        y.add_row_broadcast(&self.bias);
        self.cached_input = Some(x.clone());
        y
    }

    /// Inference-only forward pass (no caching).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight);
        y.add_row_broadcast(&self.bias);
        y
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let grad_in = self.backward_from(&x, grad_out);
        self.cached_input = Some(x);
        grad_in
    }

    /// Backward pass with the forward input supplied by the caller — the
    /// clone-free path used by [`crate::Mlp`]'s persistent activation
    /// workspace (`forward` caches a copy of its input; this variant needs
    /// no cache at all).
    pub fn backward_from(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        self.accumulate_param_grads(input, grad_out);
        grad_out.matmul_t(&self.weight)
    }

    /// Parameter-gradient half of the backward pass, without computing the
    /// input gradient — what the *first* layer of a network needs (its
    /// `dL/dx` is never consumed, and for a 784-input MNIST layer that
    /// skipped `matmul_t` is a third of all backward FLOPs).
    pub fn accumulate_param_grads(&mut self, input: &Matrix, grad_out: &Matrix) {
        input.t_matmul_into(grad_out, &mut self.grad_weight);
        self.grad_bias = grad_out.col_sums();
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.scale(0.0);
        for g in &mut self.grad_bias {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of dW, db, dx.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, 7);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8], &[-1.0, 0.3, 0.1]]);
        // Scalar loss = sum of squares of outputs / 2.
        let loss = |l: &Dense, x: &Matrix| -> f32 {
            let y = l.forward_inference(x);
            y.data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let y = layer.forward(&x);
        let grad_out = y.clone(); // dL/dy = y for this loss
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-3;
        // Check dW numerically.
        for (r, c) in [(0, 0), (1, 1), (2, 0)] {
            let mut plus = layer.clone();
            plus.weight[(r, c)] += eps;
            let mut minus = layer.clone();
            minus.weight[(r, c)] -= eps;
            let num = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
            let ana = layer.grad_weight[(r, c)];
            assert!(
                (num - ana).abs() < 2e-2 * ana.abs().max(1.0),
                "dW[{r},{c}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check db numerically.
        for c in 0..2 {
            let mut plus = layer.clone();
            plus.bias[c] += eps;
            let mut minus = layer.clone();
            minus.bias[c] -= eps;
            let num = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
            let ana = layer.grad_bias[c];
            assert!(
                (num - ana).abs() < 2e-2 * ana.abs().max(1.0),
                "db[{c}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check dx numerically.
        let mut x2 = x.clone();
        for (r, c) in [(0, 0), (1, 2)] {
            let orig = x2[(r, c)];
            x2[(r, c)] = orig + eps;
            let lp = loss(&layer, &x2);
            x2[(r, c)] = orig - eps;
            let lm = loss(&layer, &x2);
            x2[(r, c)] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad_in[(r, c)];
            assert!(
                (num - ana).abs() < 2e-2 * ana.abs().max(1.0),
                "dx[{r},{c}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn backward_from_matches_cached_backward() {
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8], &[-1.0, 0.3, 0.1]]);
        let mut a = Dense::new(3, 2, 11);
        let mut b = a.clone();
        let y = a.forward(&x);
        let ga = a.backward(&y);
        let yb = b.forward_inference(&x);
        let gb = b.backward_from(&x, &yb);
        assert_eq!(ga.data(), gb.data());
        assert_eq!(a.grad_weight.data(), b.grad_weight.data());
        assert_eq!(a.grad_bias, b.grad_bias);
    }

    #[test]
    fn forward_shapes() {
        let mut l = Dense::new(5, 3, 1);
        let y = l.forward(&Matrix::zeros(7, 5));
        assert_eq!((y.rows(), y.cols()), (7, 3));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut l = Dense::new(2, 2, 1);
        let _ = l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = Dense::new(2, 2, 1);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = l.forward(&x);
        let _ = l.backward(&y);
        assert!(l.grad_weight.frobenius_norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.grad_weight.frobenius_norm(), 0.0);
    }
}
