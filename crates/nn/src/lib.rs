//! Dense neural-network substrate: matrices, layers, losses, optimizers,
//! and a plain feed-forward MLP with dropout.
//!
//! The paper's networks are fully-connected FNNs (e.g. 784-200-200-10 for
//! MNIST); this crate provides the conventional-NN side of every
//! experiment — the FNN baselines of Figures 16/17 and Tables 6/7 — and the
//! building blocks (`Matrix`, activations, optimizers) that `vibnn-bnn`
//! reuses for Bayes-by-Backprop.
//!
//! # Example
//!
//! ```
//! use vibnn_nn::{Matrix, Mlp, MlpConfig};
//! let cfg = MlpConfig::new(&[4, 8, 3]);
//! let mut mlp = Mlp::new(cfg, 42);
//! let x = Matrix::zeros(1, 4);
//! let probs = mlp.predict_proba(&x);
//! assert_eq!(probs.cols(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod dense;
mod init;
pub mod matrix;
mod metrics;
mod mlp;
mod optimizer;

pub use activation::{relu, relu_backward, softmax_rows};
pub use dense::Dense;
pub use init::GaussianInit;
pub use matrix::{Matrix, LANES};
pub use metrics::{accuracy, confusion_matrix, cross_entropy_loss};
pub use mlp::{Mlp, MlpConfig, TrainReport};
pub use optimizer::{update_matrix, Adam, AdamStep, Optimizer, Sgd};
