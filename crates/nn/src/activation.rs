//! Activations: ReLU (the PE's final pipeline stage) and softmax.

use crate::Matrix;

/// In-place ReLU.
pub fn relu(m: &mut Matrix) {
    m.map_inplace(|v| v.max(0.0));
}

/// ReLU backward: zeroes gradient entries where the forward *output* was
/// zero. `grad` is modified in place.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward(grad: &mut Matrix, forward_output: &Matrix) {
    assert_eq!(
        (grad.rows(), grad.cols()),
        (forward_output.rows(), forward_output.cols()),
        "relu_backward shape mismatch"
    );
    for (g, &y) in grad.data_mut().iter_mut().zip(forward_output.data()) {
        if y <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Row-wise numerically-stable softmax, in place.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        for v in row.iter_mut() {
            *v *= inv;
        }
        debug_assert_eq!(row.len(), cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        relu(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let y = Matrix::from_rows(&[&[0.0, 1.0, 3.0]]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0, 5.0]]);
        relu_backward(&mut g, &y);
        assert_eq!(g.data(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(m[(0, 2)] > m[(0, 1)] && m[(0, 1)] > m[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        softmax_rows(&mut a);
        assert!(a.data().iter().all(|v| v.is_finite()));
        let mut b = Matrix::from_rows(&[&[0.0, 1.0]]);
        softmax_rows(&mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
