//! Weight initialization: a small Gaussian sampler over SplitMix64.

use vibnn_rng::{BitSource, SplitMix64};

use crate::Matrix;

/// Deterministic Gaussian initializer (Box–Muller over SplitMix64).
///
/// # Example
///
/// ```
/// use vibnn_nn::GaussianInit;
/// let mut init = GaussianInit::new(7);
/// let w = init.he_matrix(64, 32);
/// assert_eq!((w.rows(), w.cols()), (64, 32));
/// ```
#[derive(Debug, Clone)]
pub struct GaussianInit {
    rng: SplitMix64,
    cached: Option<f64>,
}

impl GaussianInit {
    /// Creates the initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            cached: None,
        }
    }

    /// Next standard normal sample.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * th.sin());
        r * th.cos()
    }

    /// Next uniform in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Fast-forwards past `n` [`next_uniform`](Self::next_uniform) draws
    /// in O(1) (each uniform consumes exactly one underlying SplitMix64
    /// output). Checkpoint loading uses this to replay a recorded stream
    /// position without iterating; the Gaussian spare cache is untouched.
    pub fn skip_uniforms(&mut self, n: u64) {
        self.rng.advance(n);
    }

    /// He-normal matrix: N(0, 2/fan_in).
    pub fn he_matrix(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let std = (2.0 / fan_in as f64).sqrt();
        let mut m = Matrix::zeros(fan_in, fan_out);
        for v in m.data_mut() {
            *v = (self.next_gaussian() * std) as f32;
        }
        m
    }

    /// Constant-filled matrix.
    pub fn constant_matrix(rows: usize, cols: usize, value: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() {
            *v = value;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_matrix_std_is_right() {
        let mut init = GaussianInit::new(1);
        let w = init.he_matrix(200, 100);
        let n = (200 * 100) as f64;
        let mean: f64 = w.data().iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var: f64 = w
            .data()
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / n;
        let want = 2.0 / 200.0;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - want).abs() < want * 0.1, "var {var} want {want}");
    }

    #[test]
    fn deterministic() {
        let mut a = GaussianInit::new(9);
        let mut b = GaussianInit::new(9);
        assert_eq!(a.he_matrix(4, 4).data(), b.he_matrix(4, 4).data());
    }

    #[test]
    fn constant_matrix_fills() {
        let m = GaussianInit::constant_matrix(2, 3, 0.5);
        assert!(m.data().iter().all(|&v| v == 0.5));
    }
}
