//! A minimal row-major `f32` matrix with the operations backprop needs.
//!
//! Every floating-point reduction in this module follows the workspace-wide
//! **fixed-lane accumulation contract** (see [`LANES`] and the README's
//! "The accumulation contract" section): a reduction over terms
//! `t_0, t_1, …, t_{K-1}` is computed as [`LANES`] independent partial sums
//! (term `k` belongs to lane `k % LANES`, accumulated in ascending `k`
//! within its lane), combined in ascending lane order. Lane membership is a
//! function of the data layout only — never of tiling, thread count, or
//! schedule — so results are bit-identical on any machine configuration
//! while the independent lanes autovectorize on stable Rust.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of independent accumulation lanes in the workspace-wide
/// fixed-lane reduction contract.
///
/// Every `f32` reduction in the hot path — the [`Matrix`] matmul family,
/// [`Matrix::col_sums`], the BNN's Monte-Carlo mean and ordered gradient
/// folds — computes `Σ_k t_k` as `LANES` zero-seeded partial-sum chains:
///
/// ```text
/// lane l  =  0.0 + t_l + t_{l+LANES} + t_{l+2·LANES} + …   (ascending k)
/// result  =  ((…(lane 0 + lane 1) + lane 2)… + lane 7)     (ascending l)
/// ```
///
/// Because the lane of term `k` is `k % LANES` — a function of the data
/// index alone — the result is bit-identical at any thread count and any
/// tiling, while the eight independent chains map directly onto SIMD
/// registers under autovectorization (no intrinsics, no `unsafe`).
///
/// Two documented liberties keep the kernels allocation- and branch-free
/// without observable effect:
///
/// * a lane may be *seeded* with its first term instead of `0.0 + term`,
///   and an all-zero lane may be skipped during the combine. Both differ
///   from the literal contract only in the sign of an exact zero
///   (`0.0 + -0.0 == +0.0`), which `f32`/[`Matrix`] equality cannot
///   distinguish;
/// * [`Matrix::matmul`] and [`Matrix::t_matmul`] skip terms whose left
///   coefficient is exactly zero (ReLU activations and MNIST pixels are
///   zero-heavy). For finite inputs the skipped term contributes `±0.0`;
///   with infinities or NaNs results can differ from the unskipped sum,
///   exactly as in previous revisions.
///
/// The pre-lane single-chain kernels are retained as a cross-check oracle
/// in `single_chain` (enabled under `cfg(test)` or the
/// `single-chain-oracle` feature).
pub const LANES: usize = 8;

/// Row-major dense matrix of `f32`.
///
/// Deliberately small: exactly the operations a fully-connected network
/// needs (matmul with optional transposes, broadcast row add, column sums,
/// elementwise maps), implemented with cache-friendly loops under the
/// [`LANES`] fixed-lane accumulation contract.
///
/// # Example
///
/// ```
/// use vibnn_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 19.0);
/// assert_eq!(c[(1, 1)], 50.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Column tile for [`Matrix::matmul`] / [`Matrix::t_matmul`] and the width
/// of the hot lane buffer: one 1 KiB output segment plus the streamed
/// right-operand rows stay L1-resident across the reduction.
const BLOCK_J: usize = 256;
/// Row tile of the right operand for [`Matrix::matmul_t`]: the dot-product
/// kernel re-reads a `BLOCK_J_T × k` panel of `other` for every row of
/// `self` while it is cache-hot.
const BLOCK_J_T: usize = 64;

/// Accumulates `out_row[j] = Σ_k coeff(k) · b[k·b_stride + b_off + j]`
/// under the [`LANES`] contract, skipping terms whose coefficient is
/// exactly zero.
///
/// `lane_buf` is caller-owned scratch (hoisted so it is memset once per
/// kernel call, not once per output row); each used lane fully overwrites
/// it before reading. Lanes are seeded with their first surviving term and
/// all-zero lanes are skipped in the combine — the two `±0.0`-only
/// liberties documented on [`LANES`].
#[inline]
fn lane_accumulate(
    out_row: &mut [f32],
    lane_buf: &mut [f32; BLOCK_J],
    terms: usize,
    coeff: impl Fn(usize) -> f32,
    b: &[f32],
    b_stride: usize,
    b_off: usize,
) {
    let jw = out_row.len();
    debug_assert!(jw <= BLOCK_J);
    let mut out_seeded = false;
    for l in 0..LANES.min(terms) {
        let mut lane_seeded = false;
        let mut k = l;
        while k < terms {
            let a = coeff(k);
            if a != 0.0 {
                let start = k * b_stride + b_off;
                let b_seg = &b[start..start + jw];
                let lb = &mut lane_buf[..jw];
                if lane_seeded {
                    for (o, &bv) in lb.iter_mut().zip(b_seg) {
                        *o += a * bv;
                    }
                } else {
                    for (o, &bv) in lb.iter_mut().zip(b_seg) {
                        *o = a * bv;
                    }
                    lane_seeded = true;
                }
            }
            k += LANES;
        }
        if lane_seeded {
            let lb = &lane_buf[..jw];
            if out_seeded {
                for (o, &v) in out_row.iter_mut().zip(lb) {
                    *o += v;
                }
            } else {
                out_row.copy_from_slice(lb);
                out_seeded = true;
            }
        }
    }
    if !out_seeded {
        out_row.fill(0.0);
    }
}

/// Dot product `Σ_k a[k]·b[k]` under the [`LANES`] contract: chunk `c`
/// element `l` is term `k = c·LANES + l`, so the per-chunk element-wise
/// multiply-accumulate keeps exactly the eight contract lanes in a SIMD
/// register, and the scalar tail lands in lanes `0..rem` unchanged. No
/// zero-term skip (matching the historical `matmul_t` kernel).
#[inline]
fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (ra, rb) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (l, (&x, &y)) in ra.iter().zip(rb).enumerate() {
        acc[l] += x * y;
    }
    let mut s = acc[0];
    for &v in &acc[1..] {
        s += v;
    }
    s
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place to `rows × cols`, reusing the existing
    /// allocation whenever capacity allows (a scratch matrix cycling
    /// through layer shapes settles at the largest one and stops
    /// allocating). Contents are unspecified after a shape change; any
    /// grown region is zero-filled.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Standard matrix product `self · other`.
    ///
    /// Each output element reduces over `k` (rows of `other`) under the
    /// [`LANES`] fixed-lane contract — term `k` in lane `k % LANES`,
    /// lanes combined in ascending order — so the result is bit-identical
    /// to [`Self::t_matmul`] / [`Self::matmul_t`] on transposed operands
    /// and independent of tiling and thread count. Column tiles of
    /// `BLOCK_J` keep the hot lane buffer and output segment L1-resident
    /// while the `other` panel streams past once per row of `self`.
    /// Terms with a zero left coefficient are skipped (see [`LANES`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Self::matmul`] into a caller-owned output matrix, which is
    /// resized (allocation-free once warm) and overwritten. Bit-identical
    /// to `matmul`; the workhorse of the training engine's reusable
    /// activation workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.resize(self.rows, other.cols);
        let n = other.cols;
        let k_total = self.cols;
        let mut lane_buf = [0.0f32; BLOCK_J];
        for jb in (0..n).step_by(BLOCK_J) {
            let j_hi = (jb + BLOCK_J).min(n);
            for i in 0..self.rows {
                let a_row = &self.data[i * k_total..(i + 1) * k_total];
                let o_row = &mut out.data[i * n + jb..i * n + j_hi];
                lane_accumulate(
                    o_row,
                    &mut lane_buf,
                    k_total,
                    |k| a_row[k],
                    &other.data,
                    n,
                    jb,
                );
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// Same [`LANES`] lane assignment and combine order as
    /// [`Self::matmul`], with the reduction running over rows `r` of both
    /// operands — bit-identical to `self.transpose().matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// [`Self::t_matmul`] into a caller-owned output matrix (resized and
    /// overwritten). Bit-identical to `t_matmul`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.resize(self.cols, other.cols);
        let n = other.cols;
        let r_total = self.rows;
        let a_cols = self.cols;
        let mut lane_buf = [0.0f32; BLOCK_J];
        for jb in (0..n).step_by(BLOCK_J) {
            let j_hi = (jb + BLOCK_J).min(n);
            for i in 0..a_cols {
                let o_row = &mut out.data[i * n + jb..i * n + j_hi];
                lane_accumulate(
                    o_row,
                    &mut lane_buf,
                    r_total,
                    |r| self.data[r * a_cols + i],
                    &other.data,
                    n,
                    jb,
                );
            }
        }
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// Each output element is a dot product over the shared `k` dimension
    /// under the [`LANES`] contract (see `lane_dot`'s description on
    /// [`LANES`]): chunking the operand rows eight-wide makes the eight
    /// lanes literally one SIMD register of partial sums. Rows of `other`
    /// are tiled `BLOCK_J_T` at a time so the panel is re-read hot for
    /// every row of `self`. No zero-term skip, so with infinities or NaNs
    /// the result can differ from `matmul` on the transpose, exactly as in
    /// previous revisions; for finite operands the two agree.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// [`Self::matmul_t`] into a caller-owned output matrix (resized and
    /// overwritten). Bit-identical to `matmul_t`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.resize(self.rows, other.rows);
        let m = other.rows;
        let k_total = self.cols;
        for jb in (0..m).step_by(BLOCK_J_T) {
            let j_hi = (jb + BLOCK_J_T).min(m);
            for i in 0..self.rows {
                let a_row = &self.data[i * k_total..(i + 1) * k_total];
                let o_row = &mut out.data[i * m + jb..i * m + j_hi];
                for (j, o) in (jb..).zip(o_row.iter_mut()) {
                    let b_row = &other.data[j * k_total..(j + 1) * k_total];
                    *o = lane_dot(a_row, b_row);
                }
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `row` to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients), reduced over rows under the
    /// [`LANES`] contract: row `r` is term `r`, lanes combined ascending.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_into(&mut sums);
        sums
    }

    /// [`Self::col_sums`] into a caller-owned buffer (must already have
    /// length `cols`) — allocation-free for pooled bias-gradient vectors.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cols`.
    pub fn col_sums_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "col_sums width mismatch");
        let mut lane_buf = [0.0f32; BLOCK_J];
        for jb in (0..self.cols).step_by(BLOCK_J) {
            let j_hi = (jb + BLOCK_J).min(self.cols);
            lane_accumulate(
                &mut out[jb..j_hi],
                &mut lane_buf,
                self.rows,
                |_| 1.0,
                &self.data,
                self.cols,
                jb,
            );
        }
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise product (Hadamard), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self += a ∘ b` (elementwise fused accumulate) — used by the
    /// training engine to fold `grad_w ∘ ε` into the ρ-gradient
    /// accumulator without materializing the product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn fma_assign(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, a.cols),
            "fma_assign shape mismatch"
        );
        assert_eq!(
            (a.rows, a.cols),
            (b.rows, b.cols),
            "fma_assign shape mismatch"
        );
        for ((o, &x), &y) in self.data.iter_mut().zip(&a.data).zip(&b.data) {
            *o += x * y;
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Extracts the sub-matrix consisting of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice(&self, start: usize, end: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.rows_slice_into(start, end, &mut out);
        out
    }

    /// [`Self::rows_slice`] into a caller-owned matrix (resized and
    /// overwritten; allocation-free once warm).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(start <= end && end <= self.rows, "invalid row range");
        out.resize(end - start, self.cols);
        out.data
            .copy_from_slice(&self.data[start * self.cols..end * self.cols]);
    }

    /// Builds a matrix by selecting the given rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Self::select_rows`] into a caller-owned matrix (resized and
    /// overwritten; allocation-free once warm) — the per-minibatch
    /// row-gather of the training loop.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for workspace buffers
    /// that grow on first use via [`Matrix::resize`].
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// The pre-lane single-accumulator kernels, retained verbatim as the
/// cross-check oracle for the [`LANES`] contract.
///
/// These compute every output element with **one** sequential accumulator
/// chain over ascending `k` — the accumulation rule this workspace used
/// before the fixed-lane contract. They are not part of the production
/// path; `tests/lane_determinism.rs` (and the in-crate tests) pin the lane
/// kernels against them within a documented tolerance. Enabled under
/// `cfg(test)` or the `single-chain-oracle` feature.
#[cfg(any(test, feature = "single-chain-oracle"))]
pub mod single_chain {
    use super::Matrix;

    /// Single-chain `a · b` (ascending-`k` accumulation, zero-skip on the
    /// left coefficient — the pre-lane `matmul`).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let n = b.cols();
        let mut out = Matrix::zeros(a.rows(), n);
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a[(i, k)];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += av * b[(k, j)];
                }
            }
        }
        out
    }

    /// Single-chain `aᵀ · b` (the pre-lane `t_matmul`).
    pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "t_matmul shape mismatch");
        let n = b.cols();
        let mut out = Matrix::zeros(a.cols(), n);
        for r in 0..a.rows() {
            for i in 0..a.cols() {
                let av = a[(r, i)];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += av * b[(r, j)];
                }
            }
        }
        out
    }

    /// Single-chain `a · bᵀ` (ascending-`k` dot product, no zero-skip —
    /// the pre-lane `matmul_t`).
    pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_t shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(j, k)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Single-chain column sums (ascending-row accumulation — the
    /// pre-lane `col_sums`).
    pub fn col_sums(a: &Matrix) -> Vec<f32> {
        let mut sums = vec![0.0f32; a.cols()];
        for r in 0..a.rows() {
            for (s, &v) in sums.iter_mut().zip(a.row(r)) {
                *s += v;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    fn select_rows_picks() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[2.0, 0.0]);
    }

    #[test]
    fn rows_slice_range() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = a.rows_slice(1, 3);
        assert_eq!(s.data(), &[1.0, 2.0]);
    }

    #[test]
    fn into_variants_reuse_warm_buffers() {
        let a = Matrix::from_rows(&[&[0.0, 9.0], &[1.0, 8.0], &[2.0, 7.0], &[3.0, 6.0]]);
        let mut out = Matrix::zeros(7, 7);
        a.rows_slice_into(1, 3, &mut out);
        assert_eq!(out, a.rows_slice(1, 3));
        a.select_rows_into(&[3, 0, 0], &mut out);
        assert_eq!(out, a.select_rows(&[3, 0, 0]));
        let mut sums = vec![42.0f32; 2];
        a.col_sums_into(&mut sums);
        assert_eq!(sums, a.col_sums());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Literal transcription of the [`LANES`] contract: zero-seeded lane
    /// partial sums over ascending `k`, combined in ascending lane order.
    /// `skip_zero` mirrors the matmul/t_matmul left-coefficient skip.
    fn lane_reference(
        terms: usize,
        skip_zero: bool,
        coeff: impl Fn(usize) -> (f32, f32),
    ) -> f32 {
        let mut lanes = [0.0f32; LANES];
        for k in 0..terms {
            let (a, b) = coeff(k);
            if skip_zero && a == 0.0 {
                continue;
            }
            lanes[k % LANES] += a * b;
        }
        let mut s = 0.0f32;
        for &l in &lanes {
            s += l;
        }
        s
    }

    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                out[(i, j)] =
                    lane_reference(a.cols(), true, |k| (a[(i, k)], b[(k, j)]));
            }
        }
        out
    }

    fn reference_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                out[(i, j)] =
                    lane_reference(a.cols(), false, |k| (a[(i, k)], b[(j, k)]));
            }
        }
        out
    }

    fn patterned(rows: usize, cols: usize, salt: u32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            // Mix in zeros to exercise the sparsity skip.
            let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
            *v = if h % 7 == 0 {
                0.0
            } else {
                ((h % 1000) as f32 - 500.0) * 1e-3
            };
        }
        m
    }

    #[test]
    fn blocked_matmul_matches_lane_reference_across_tile_boundaries() {
        // 130 × 300 × 290 straddles BLOCK_J = 256 and leaves lane tails
        // (300 % 8 = 4, 290 % 256 = 34).
        let a = patterned(130, 300, 1);
        let b = patterned(300, 290, 2);
        assert_eq!(a.matmul(&b), reference_matmul(&a, &b));
    }

    #[test]
    fn blocked_transpose_kernels_cross_tiles_consistently() {
        let a = patterned(140, 150, 3);
        let b = patterned(140, 270, 4);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = patterned(60, 150, 5);
        // 90 rows of `d` cross BLOCK_J_T = 64; 150 shared cols leave a
        // 6-element lane tail in the dot kernel.
        let d = patterned(90, 150, 6);
        assert_eq!(c.matmul_t(&d), c.matmul(&d.transpose()));
        assert_eq!(c.matmul_t(&d), reference_matmul_t(&c, &d));
    }

    #[test]
    fn small_reductions_match_lane_reference() {
        // Fewer terms than lanes: every lane holds at most one term.
        let a = patterned(3, 5, 11);
        let b = patterned(5, 4, 12);
        assert_eq!(a.matmul(&b), reference_matmul(&a, &b));
        let c = patterned(6, 5, 13);
        assert_eq!(a.matmul_t(&c), reference_matmul_t(&a, &c));
    }

    #[test]
    fn col_sums_match_lane_reference() {
        let a = patterned(37, 300, 14);
        let got = a.col_sums();
        for (j, &s) in got.iter().enumerate() {
            let want = lane_reference(a.rows(), false, |r| (1.0, a[(r, j)]));
            assert_eq!(s, want, "col {j}");
        }
    }

    #[test]
    fn into_kernels_match_allocating_kernels_on_warm_buffers() {
        let a = patterned(37, 90, 7);
        let b = patterned(90, 41, 8);
        let mut out = Matrix::zeros(3, 3); // wrong shape: must be resized
        out.map_inplace(|_| 42.0); // and stale contents discarded
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let g = patterned(37, 41, 9);
        a.t_matmul_into(&g, &mut out);
        assert_eq!(out, a.t_matmul(&g));
        let c = patterned(20, 90, 10);
        a.matmul_t_into(&c, &mut out);
        assert_eq!(out, a.matmul_t(&c));
    }

    /// The lane kernels must stay numerically on top of the pre-lane
    /// single-chain oracle: same terms, different association, so the
    /// divergence is pure rounding — a few ulp on these magnitudes.
    #[test]
    fn lane_kernels_track_single_chain_oracle() {
        let a = patterned(130, 300, 21);
        let b = patterned(300, 290, 22);
        let lane = a.matmul(&b);
        let oracle = single_chain::matmul(&a, &b);
        let mut max_abs = 0.0f32;
        for (x, y) in lane.data().iter().zip(oracle.data()) {
            max_abs = max_abs.max((x - y).abs());
        }
        // Inputs are ≤ 0.5 in magnitude with 300 terms: a 1e-4 absolute
        // envelope is ~100× the observed worst case and still catches any
        // dropped or duplicated term outright.
        assert!(max_abs < 1e-4, "matmul diverged from oracle: {max_abs}");

        let c = patterned(60, 150, 23);
        let d = patterned(90, 150, 24);
        let lane_t = c.matmul_t(&d);
        let oracle_t = single_chain::matmul_t(&c, &d);
        for (x, y) in lane_t.data().iter().zip(oracle_t.data()) {
            assert!((x - y).abs() < 1e-4, "matmul_t diverged: {x} vs {y}");
        }

        let e = patterned(140, 150, 25);
        let f = patterned(140, 270, 26);
        let lane_tm = e.t_matmul(&f);
        let oracle_tm = single_chain::t_matmul(&e, &f);
        for (x, y) in lane_tm.data().iter().zip(oracle_tm.data()) {
            assert!((x - y).abs() < 1e-4, "t_matmul diverged: {x} vs {y}");
        }

        let g = patterned(100, 260, 27);
        for (x, y) in g.col_sums().iter().zip(single_chain::col_sums(&g)) {
            assert!((x - y).abs() < 1e-4, "col_sums diverged: {x} vs {y}");
        }
    }

    #[test]
    fn fma_assign_accumulates_products() {
        let mut acc = Matrix::from_rows(&[&[1.0, 2.0]]);
        let a = Matrix::from_rows(&[&[3.0, -1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 5.0]]);
        acc.fma_assign(&a, &b);
        assert_eq!(acc.data(), &[7.0, -3.0]);
    }

    #[test]
    fn hadamard() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        a.hadamard_assign(&b);
        assert_eq!(a.data(), &[3.0, 8.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
