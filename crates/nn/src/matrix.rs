//! A minimal row-major `f32` matrix with the operations backprop needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of `f32`.
///
/// Deliberately small: exactly the operations a fully-connected network
/// needs (matmul with optional transposes, broadcast row add, column sums,
/// elementwise maps), implemented with cache-friendly loops.
///
/// # Example
///
/// ```
/// use vibnn_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 19.0);
/// assert_eq!(c[(1, 1)], 50.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Reduction-dimension tile: a 512-byte `f32` segment of one operand row
/// stays resident while its panel is consumed.
const BLOCK_K: usize = 128;
/// Column tile for [`Matrix::matmul`] / [`Matrix::t_matmul`]: the touched
/// `BLOCK_K × BLOCK_J` panel of the right operand is ~128 KiB — L2-sized —
/// while each 1 KiB output row segment stays in L1 across the k loop.
const BLOCK_J: usize = 256;
/// Row tile of the right operand for [`Matrix::matmul_t`]: a
/// `BLOCK_J_T × BLOCK_K` panel is 32 KiB, so the dot-product kernel reads
/// it from L1 for every row of the left operand.
const BLOCK_J_T: usize = 64;

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place to `rows × cols`, reusing the existing
    /// allocation whenever capacity allows (a scratch matrix cycling
    /// through layer shapes settles at the largest one and stops
    /// allocating). Contents are unspecified after a shape change; any
    /// grown region is zero-filled.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Standard matrix product `self · other`.
    ///
    /// Tiled over `k` (rows of `other`) and `j` (columns of `other`) so
    /// that one `BLOCK_K × BLOCK_J` panel of `other` and the matching
    /// output row segments stay cache-resident while every row of `self`
    /// streams past — the i-k-j micro-kernel of the original code, wrapped
    /// in L1/L2-sized blocks. For each output element the products are
    /// accumulated in strictly ascending `k` with a single accumulator
    /// chain, so results are bit-identical to the untiled kernel (and to
    /// [`Self::matmul_t`] / [`Self::t_matmul`] on transposed operands).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Self::matmul`] into a caller-owned output matrix, which is
    /// resized (allocation-free once warm) and overwritten. Bit-identical
    /// to `matmul`; the workhorse of the training engine's reusable
    /// activation workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.resize(self.rows, other.cols);
        out.data.fill(0.0);
        let n = other.cols;
        for jb in (0..n).step_by(BLOCK_J) {
            let j_hi = (jb + BLOCK_J).min(n);
            for kb in (0..self.cols).step_by(BLOCK_K) {
                let k_hi = (kb + BLOCK_K).min(self.cols);
                for i in 0..self.rows {
                    let a_row = &self.data[i * self.cols + kb..i * self.cols + k_hi];
                    let o_row = &mut out.data[i * n + jb..i * n + j_hi];
                    for (k, &a) in (kb..).zip(a_row) {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &other.data[k * n + jb..k * n + j_hi];
                        for (o, &b) in o_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// Same blocking and accumulation-order guarantees as
    /// [`Self::matmul`], with the reduction running over rows `r` of both
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// [`Self::t_matmul`] into a caller-owned output matrix (resized and
    /// overwritten). Bit-identical to `t_matmul`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.resize(self.cols, other.cols);
        out.data.fill(0.0);
        let n = other.cols;
        for jb in (0..n).step_by(BLOCK_J) {
            let j_hi = (jb + BLOCK_J).min(n);
            for rb in (0..self.rows).step_by(BLOCK_K) {
                let r_hi = (rb + BLOCK_K).min(self.rows);
                for r in rb..r_hi {
                    let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
                    let b_row = &other.data[r * n + jb..r * n + j_hi];
                    for (i, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let o_row = &mut out.data[i * n + jb..i * n + j_hi];
                        for (o, &b) in o_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// Blocked over rows of `other` and the shared `k` dimension so the
    /// `other` panel is reused across every row of `self` while it is hot.
    /// Each output element keeps one sequential accumulator chain over
    /// ascending `k` (the partial resumes from the stored value), so for
    /// finite operands the result is bit-identical to
    /// `self.matmul(&other.transpose())`. (With infinities or NaNs the two
    /// can differ: `matmul` skips zero left-operand terms, and
    /// `0.0 × ±inf` is NaN.)
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// [`Self::matmul_t`] into a caller-owned output matrix (resized and
    /// overwritten). Bit-identical to `matmul_t`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.resize(self.rows, other.rows);
        out.data.fill(0.0);
        let m = other.rows;
        for jb in (0..m).step_by(BLOCK_J_T) {
            let j_hi = (jb + BLOCK_J_T).min(m);
            for kb in (0..self.cols).step_by(BLOCK_K) {
                let k_hi = (kb + BLOCK_K).min(self.cols);
                for i in 0..self.rows {
                    let a_seg = &self.data[i * self.cols + kb..i * self.cols + k_hi];
                    let o_row = &mut out.data[i * m + jb..i * m + j_hi];
                    for (j, o) in (jb..).zip(o_row.iter_mut()) {
                        let b_seg = &other.data[j * other.cols + kb..j * other.cols + k_hi];
                        let mut acc = *o;
                        for (&a, &b) in a_seg.iter().zip(b_seg) {
                            acc += a * b;
                        }
                        *o = acc;
                    }
                }
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `row` to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise product (Hadamard), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self += a ∘ b` (elementwise fused accumulate) — used by the
    /// training engine to fold `grad_w ∘ ε` into the ρ-gradient
    /// accumulator without materializing the product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn fma_assign(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, a.cols),
            "fma_assign shape mismatch"
        );
        assert_eq!(
            (a.rows, a.cols),
            (b.rows, b.cols),
            "fma_assign shape mismatch"
        );
        for ((o, &x), &y) in self.data.iter_mut().zip(&a.data).zip(&b.data) {
            *o += x * y;
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Extracts the sub-matrix consisting of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "invalid row range");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Builds a matrix by selecting the given rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for workspace buffers
    /// that grow on first use via [`Matrix::resize`].
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    fn select_rows_picks() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[2.0, 0.0]);
    }

    #[test]
    fn rows_slice_range() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = a.rows_slice(1, 3);
        assert_eq!(s.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Naive reference kernel with the same per-element accumulation
    /// order the blocked kernels guarantee (ascending k, one chain).
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    if a[(i, k)] != 0.0 {
                        acc += a[(i, k)] * b[(k, j)];
                    }
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn patterned(rows: usize, cols: usize, salt: u32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            // Mix in zeros to exercise the sparsity skip.
            let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
            *v = if h % 7 == 0 {
                0.0
            } else {
                ((h % 1000) as f32 - 500.0) * 1e-3
            };
        }
        m
    }

    #[test]
    fn blocked_matmul_is_bit_identical_across_tile_boundaries() {
        // 130 × 300 × 290 straddles BLOCK_K = 128 and BLOCK_J = 256.
        let a = patterned(130, 300, 1);
        let b = patterned(300, 290, 2);
        assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
    }

    #[test]
    fn blocked_transpose_kernels_cross_tiles_consistently() {
        let a = patterned(140, 150, 3);
        let b = patterned(140, 270, 4);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = patterned(60, 150, 5);
        // 150 cols crosses BLOCK_K only via the k tail; 90 rows of `d`
        // cross BLOCK_J_T = 64.
        let d = patterned(90, 150, 6);
        assert_eq!(c.matmul_t(&d), c.matmul(&d.transpose()));
    }

    #[test]
    fn into_kernels_match_allocating_kernels_on_warm_buffers() {
        let a = patterned(37, 90, 7);
        let b = patterned(90, 41, 8);
        let mut out = Matrix::zeros(3, 3); // wrong shape: must be resized
        out.map_inplace(|_| 42.0); // and stale contents discarded
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let g = patterned(37, 41, 9);
        a.t_matmul_into(&g, &mut out);
        assert_eq!(out, a.t_matmul(&g));
        let c = patterned(20, 90, 10);
        a.matmul_t_into(&c, &mut out);
        assert_eq!(out, a.matmul_t(&c));
    }

    #[test]
    fn fma_assign_accumulates_products() {
        let mut acc = Matrix::from_rows(&[&[1.0, 2.0]]);
        let a = Matrix::from_rows(&[&[3.0, -1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 5.0]]);
        acc.fma_assign(&a, &b);
        assert_eq!(acc.data(), &[7.0, -3.0]);
    }

    #[test]
    fn hadamard() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        a.hadamard_assign(&b);
        assert_eq!(a.data(), &[3.0, 8.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
