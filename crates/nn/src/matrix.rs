//! A minimal row-major `f32` matrix with the operations backprop needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of `f32`.
///
/// Deliberately small: exactly the operations a fully-connected network
/// needs (matmul with optional transposes, broadcast row add, column sums,
/// elementwise maps), implemented with cache-friendly loops.
///
/// # Example
///
/// ```
/// use vibnn_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 19.0);
/// assert_eq!(c[(1, 1)], 50.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Standard matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j ordering: streams through `other` rows, cache friendly.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let b_row = &other.data[r * other.cols..(r + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `row` to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise product (Hadamard), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Extracts the sub-matrix consisting of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "invalid row range");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Builds a matrix by selecting the given rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    fn select_rows_picks() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[2.0, 0.0]);
    }

    #[test]
    fn rows_slice_range() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = a.rows_slice(1, 3);
        assert_eq!(s.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn hadamard() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        a.hadamard_assign(&b);
        assert_eq!(a.data(), &[3.0, 8.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
