//! Classification metrics and the cross-entropy loss.

use crate::Matrix;

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `probs.rows() != labels.len()` or `probs` is empty.
pub fn accuracy(probs: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(probs.rows(), labels.len(), "row/label count mismatch");
    assert!(probs.rows() > 0, "empty prediction matrix");
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = probs.row(r);
        let (argmax, _) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN probs"))
            .expect("non-empty row");
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

/// `classes × classes` confusion matrix; entry `(i, j)` counts samples of
/// true class `i` predicted as class `j`.
///
/// # Panics
///
/// Panics if a label is out of range.
pub fn confusion_matrix(probs: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<u64>> {
    assert_eq!(probs.rows(), labels.len(), "row/label count mismatch");
    let mut cm = vec![vec![0u64; classes]; classes];
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let row = probs.row(r);
        let (pred, _) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN probs"))
            .expect("non-empty row");
        cm[label][pred] += 1;
    }
    cm
}

/// Mean cross-entropy of predicted probabilities against integer labels.
///
/// # Panics
///
/// Panics on row/label count mismatch or out-of-range labels.
pub fn cross_entropy_loss(probs: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(probs.rows(), labels.len(), "row/label count mismatch");
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < probs.cols(), "label {label} out of range");
        let p = f64::from(probs[(r, label)]).max(1e-12);
        total -= p.ln();
    }
    total / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert!((accuracy(&probs, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_tallies() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.7, 0.3]]);
        let cm = confusion_matrix(&probs, &[0, 0, 1], 2);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[0][1], 1);
        assert_eq!(cm[1][0], 1);
        assert_eq!(cm[1][1], 0);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let probs = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert!(cross_entropy_loss(&probs, &[0]) < 1e-9);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let probs = Matrix::from_rows(&[&[0.25, 0.25, 0.25, 0.25]]);
        assert!((cross_entropy_loss(&probs, &[2]) - 4.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "row/label count mismatch")]
    fn mismatched_lengths_panic() {
        let probs = Matrix::zeros(2, 2);
        let _ = accuracy(&probs, &[0]);
    }
}
