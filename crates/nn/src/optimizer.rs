//! Optimizers: SGD with momentum and Adam.

use crate::Matrix;

/// A gradient-descent update rule over (matrix, bias-vector) parameter
/// pairs. Each [`Dense`](crate::Dense) or variational layer registers one
/// slot per parameter tensor via `slot()` and applies updates through it.
pub trait Optimizer {
    /// Allocates optimizer state for a parameter tensor of the given shape
    /// and returns its slot id.
    fn slot(&mut self, rows: usize, cols: usize) -> usize;

    /// Applies one update: `param -= step(grad)` for the slot.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Applies one update to a matrix parameter **in place** — no
    /// round-trip through a temporary `Vec` (the training hot loop calls
    /// this once per tensor per minibatch).
    fn update_matrix(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        self.update(slot, param.data_mut(), grad.data());
    }

    /// Advances the global step counter (call once per minibatch).
    fn tick(&mut self) {}
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use vibnn_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1, 0.9);
/// let s = opt.slot(1, 2);
/// let mut p = [1.0f32, 1.0];
/// opt.update(s, &mut p, &[1.0, 0.0]);
/// assert!(p[0] < 1.0 && p[1] == 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.velocity.push(vec![0.0; rows * cols]);
        self.velocity.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let v = &mut self.velocity[slot];
        assert_eq!(v.len(), param.len(), "slot/param size mismatch");
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        for ((p, g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel + g;
            *p -= self.lr * *vel;
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard defaults β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// The global step counter (number of `tick()` calls so far).
    pub fn step_count(&self) -> i32 {
        self.t
    }

    /// Number of registered parameter slots.
    pub fn slot_count(&self) -> usize {
        self.m.len()
    }

    /// Borrows one slot's first and second moment estimates `(m, v)` —
    /// the exact state a checkpoint must persist for bit-exact resume.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_moments(&self, slot: usize) -> (&[f32], &[f32]) {
        (&self.m[slot], &self.v[slot])
    }

    /// Restores the optimizer to a checkpointed state: learning rate,
    /// step counter, and per-slot moment vectors. Slots must already be
    /// registered (via [`Optimizer::slot`]) with matching shapes — the
    /// caller reconstructs the model first, then restores.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `lr` is non-positive, the
    /// slot count differs, or any moment vector has the wrong length.
    pub fn restore_state(
        &mut self,
        lr: f32,
        t: i32,
        moments: Vec<(Vec<f32>, Vec<f32>)>,
    ) -> Result<(), String> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(format!("learning rate {lr} must be positive and finite"));
        }
        if moments.len() != self.m.len() {
            return Err(format!(
                "slot count mismatch: checkpoint has {}, optimizer has {}",
                moments.len(),
                self.m.len()
            ));
        }
        for (slot, (m, v)) in moments.iter().enumerate() {
            if m.len() != self.m[slot].len() || v.len() != self.v[slot].len() {
                return Err(format!(
                    "slot {slot} moment length mismatch: checkpoint ({}, {}), optimizer {}",
                    m.len(),
                    v.len(),
                    self.m[slot].len()
                ));
            }
        }
        self.lr = lr;
        self.t = t;
        for (slot, (m, v)) in moments.into_iter().enumerate() {
            self.m[slot] = m;
            self.v[slot] = v;
        }
        Ok(())
    }
}

impl Optimizer for Adam {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.m.push(vec![0.0; rows * cols]);
        self.v.push(vec![0.0; rows * cols]);
        self.m.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        let t = (self.t.max(1)) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), param.len(), "slot/param size mismatch");
        // Zipped iteration: bounds checks provably elided, so the
        // moment/sqrt pipeline vectorizes (this runs once per parameter
        // per minibatch — ~400k elements for the paper's MNIST net).
        for (((p, &g), m), v) in param.iter_mut().zip(grad).zip(m.iter_mut()).zip(v.iter_mut())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn tick(&mut self) {
        self.t += 1;
    }
}

/// Applies an optimizer update to a matrix parameter (free-function form
/// of [`Optimizer::update_matrix`], kept for `dyn Optimizer` call sites).
pub fn update_matrix(opt: &mut dyn Optimizer, slot: usize, param: &mut Matrix, grad: &Matrix) {
    opt.update_matrix(slot, param, grad);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with each optimizer.
    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let s = opt.slot(1, 1);
        let mut x = [0.0f32];
        for _ in 0..iters {
            opt.tick();
            let grad = [2.0 * (x[0] - 3.0)];
            opt.update(s, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = converges(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = converges(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = converges(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_progress() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut heavy = Sgd::new(0.01, 0.9);
        let xp = converges(&mut plain, 50);
        let xh = converges(&mut heavy, 50);
        assert!(
            (xh - 3.0).abs() < (xp - 3.0).abs(),
            "momentum {xh} vs plain {xp}"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    fn restore_state_round_trips_bitwise() {
        let mut a = Adam::new(0.05);
        let s = a.slot(2, 3);
        let mut p = vec![1.0f32; 6];
        for step in 0..5 {
            a.tick();
            let g: Vec<f32> = (0..6).map(|i| (i as f32 - step as f32) * 0.1).collect();
            a.update(s, &mut p, &g);
        }
        // Snapshot, then restore into a freshly slotted optimizer.
        let (m, v) = a.slot_moments(s);
        let snapshot = vec![(m.to_vec(), v.to_vec())];
        let mut b = Adam::new(0.01);
        let sb = b.slot(2, 3);
        b.restore_state(a.lr(), a.step_count(), snapshot).unwrap();
        assert_eq!(b.lr(), a.lr());
        assert_eq!(b.step_count(), a.step_count());
        // Identical updates from here on.
        let (mut pa, mut pb) = (p.clone(), p);
        a.tick();
        b.tick();
        a.update(s, &mut pa, &[0.3, -0.1, 0.0, 0.7, -0.2, 0.05]);
        b.update(sb, &mut pb, &[0.3, -0.1, 0.0, 0.7, -0.2, 0.05]);
        assert_eq!(pa, pb);
    }

    #[test]
    fn restore_state_rejects_mismatched_shapes() {
        let mut a = Adam::new(0.05);
        let _ = a.slot(2, 2);
        assert!(a.restore_state(0.05, 1, vec![]).is_err());
        assert!(a
            .restore_state(0.05, 1, vec![(vec![0.0; 3], vec![0.0; 4])])
            .is_err());
        assert!(a.restore_state(-1.0, 1, vec![(vec![0.0; 4], vec![0.0; 4])]).is_err());
        assert!(a.restore_state(0.05, 1, vec![(vec![0.0; 4], vec![0.0; 4])]).is_ok());
    }

    #[test]
    fn update_matrix_matches_slice_update_bitwise() {
        let grad = Matrix::from_rows(&[&[0.3, -0.2], &[1.5, 0.0]]);
        let mut a = Adam::new(0.05);
        let sa = a.slot(2, 2);
        let mut b = a.clone();
        let mut pm = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut pv = pm.data().to_vec();
        a.tick();
        b.tick();
        a.update_matrix(sa, &mut pm, &grad);
        b.update(sa, &mut pv, grad.data());
        assert_eq!(pm.data(), &pv[..]);
    }
}
