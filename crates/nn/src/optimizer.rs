//! Optimizers: SGD with momentum and Adam.

use crate::matrix::LANES;
use crate::Matrix;

/// A gradient-descent update rule over (matrix, bias-vector) parameter
/// pairs. Each [`Dense`](crate::Dense) or variational layer registers one
/// slot per parameter tensor via `slot()` and applies updates through it.
pub trait Optimizer {
    /// Allocates optimizer state for a parameter tensor of the given shape
    /// and returns its slot id.
    fn slot(&mut self, rows: usize, cols: usize) -> usize;

    /// Applies one update: `param -= step(grad)` for the slot.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Applies one update to a matrix parameter **in place** — no
    /// round-trip through a temporary `Vec` (the training hot loop calls
    /// this once per tensor per minibatch).
    fn update_matrix(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        self.update(slot, param.data_mut(), grad.data());
    }

    /// Advances the global step counter (call once per minibatch).
    fn tick(&mut self) {}
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use vibnn_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1, 0.9);
/// let s = opt.slot(1, 2);
/// let mut p = [1.0f32, 1.0];
/// opt.update(s, &mut p, &[1.0, 0.0]);
/// assert!(p[0] < 1.0 && p[1] == 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.velocity.push(vec![0.0; rows * cols]);
        self.velocity.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let v = &mut self.velocity[slot];
        assert_eq!(v.len(), param.len(), "slot/param size mismatch");
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        for ((p, g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel + g;
            *p -= self.lr * *vel;
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard defaults β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// The global step counter (number of `tick()` calls so far).
    pub fn step_count(&self) -> i32 {
        self.t
    }

    /// Number of registered parameter slots.
    pub fn slot_count(&self) -> usize {
        self.m.len()
    }

    /// Borrows one slot's first and second moment estimates `(m, v)` —
    /// the exact state a checkpoint must persist for bit-exact resume.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_moments(&self, slot: usize) -> (&[f32], &[f32]) {
        (&self.m[slot], &self.v[slot])
    }

    /// Snapshot of this step's update coefficients as a stateless
    /// [`AdamStep`] kernel.
    ///
    /// Because the Adam update is purely elementwise, a caller may split a
    /// slot's `(param, grad, m, v)` slices at any consistent boundaries and
    /// apply the same `AdamStep` to each chunk — possibly from different
    /// threads — and the result is bitwise identical to one sequential
    /// [`Optimizer::update`] call. The training engine's parallel step tail
    /// relies on exactly this.
    pub fn step_params(&self) -> AdamStep {
        let t = (self.t.max(1)) as f32;
        AdamStep {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bc1: 1.0 - self.beta1.powf(t),
            bc2: 1.0 - self.beta2.powf(t),
        }
    }

    /// Mutably borrows one slot's `(m, v)` moment vectors so a caller can
    /// drive [`AdamStep::apply`] over chunks of them (the chunk-parallel
    /// companion of [`Self::slot_moments`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_state_mut(&mut self, slot: usize) -> (&mut [f32], &mut [f32]) {
        (&mut self.m[slot], &mut self.v[slot])
    }

    /// Restores the optimizer to a checkpointed state: learning rate,
    /// step counter, and per-slot moment vectors. Slots must already be
    /// registered (via [`Optimizer::slot`]) with matching shapes — the
    /// caller reconstructs the model first, then restores.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `lr` is non-positive, the
    /// slot count differs, or any moment vector has the wrong length.
    pub fn restore_state(
        &mut self,
        lr: f32,
        t: i32,
        moments: Vec<(Vec<f32>, Vec<f32>)>,
    ) -> Result<(), String> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(format!("learning rate {lr} must be positive and finite"));
        }
        if moments.len() != self.m.len() {
            return Err(format!(
                "slot count mismatch: checkpoint has {}, optimizer has {}",
                moments.len(),
                self.m.len()
            ));
        }
        for (slot, (m, v)) in moments.iter().enumerate() {
            if m.len() != self.m[slot].len() || v.len() != self.v[slot].len() {
                return Err(format!(
                    "slot {slot} moment length mismatch: checkpoint ({}, {}), optimizer {}",
                    m.len(),
                    v.len(),
                    self.m[slot].len()
                ));
            }
        }
        self.lr = lr;
        self.t = t;
        for (slot, (m, v)) in moments.into_iter().enumerate() {
            self.m[slot] = m;
            self.v[slot] = v;
        }
        Ok(())
    }
}

impl Optimizer for Adam {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.m.push(vec![0.0; rows * cols]);
        self.v.push(vec![0.0; rows * cols]);
        self.m.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        let step = self.step_params();
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), param.len(), "slot/param size mismatch");
        step.apply(param, grad, m, v);
    }

    fn tick(&mut self) {
        self.t += 1;
    }
}

/// One training step's Adam coefficients, detached from the optimizer's
/// mutable state (see [`Adam::step_params`]).
///
/// [`AdamStep::apply`] is the lane-width inner kernel behind
/// [`Optimizer::update`]: the update is elementwise, so any chunking of
/// the four slices — including the training engine's thread-parallel
/// fixed-boundary row chunks — produces bitwise-identical parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamStep {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
}

impl AdamStep {
    /// Applies the update to one chunk: moments advance and
    /// `param -= lr·m̂/(√v̂+ε)`, all elementwise.
    ///
    /// The body walks the slices in [`LANES`]-wide strips (plus a scalar
    /// tail) so the moment/sqrt pipeline maps straight onto SIMD registers;
    /// being elementwise, the strip width cannot change any result.
    ///
    /// # Panics
    ///
    /// Panics if the four slices have differing lengths.
    pub fn apply(&self, param: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        assert_eq!(param.len(), m.len(), "param/m size mismatch");
        assert_eq!(param.len(), v.len(), "param/v size mismatch");
        let (lr, b1, b2, eps, bc1, bc2) =
            (self.lr, self.beta1, self.beta2, self.eps, self.bc1, self.bc2);
        let mut pc = param.chunks_exact_mut(LANES);
        let mut gc = grad.chunks_exact(LANES);
        let mut mc = m.chunks_exact_mut(LANES);
        let mut vc = v.chunks_exact_mut(LANES);
        for (((p, g), m), v) in (&mut pc).zip(&mut gc).zip(&mut mc).zip(&mut vc) {
            for l in 0..LANES {
                m[l] = b1 * m[l] + (1.0 - b1) * g[l];
                v[l] = b2 * v[l] + (1.0 - b2) * g[l] * g[l];
                let mhat = m[l] / bc1;
                let vhat = v[l] / bc2;
                p[l] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        for (((p, &g), m), v) in pc
            .into_remainder()
            .iter_mut()
            .zip(gc.remainder())
            .zip(mc.into_remainder().iter_mut())
            .zip(vc.into_remainder().iter_mut())
        {
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Applies an optimizer update to a matrix parameter (free-function form
/// of [`Optimizer::update_matrix`], kept for `dyn Optimizer` call sites).
pub fn update_matrix(opt: &mut dyn Optimizer, slot: usize, param: &mut Matrix, grad: &Matrix) {
    opt.update_matrix(slot, param, grad);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with each optimizer.
    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let s = opt.slot(1, 1);
        let mut x = [0.0f32];
        for _ in 0..iters {
            opt.tick();
            let grad = [2.0 * (x[0] - 3.0)];
            opt.update(s, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = converges(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = converges(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = converges(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_progress() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut heavy = Sgd::new(0.01, 0.9);
        let xp = converges(&mut plain, 50);
        let xh = converges(&mut heavy, 50);
        assert!(
            (xh - 3.0).abs() < (xp - 3.0).abs(),
            "momentum {xh} vs plain {xp}"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    fn restore_state_round_trips_bitwise() {
        let mut a = Adam::new(0.05);
        let s = a.slot(2, 3);
        let mut p = vec![1.0f32; 6];
        for step in 0..5 {
            a.tick();
            let g: Vec<f32> = (0..6).map(|i| (i as f32 - step as f32) * 0.1).collect();
            a.update(s, &mut p, &g);
        }
        // Snapshot, then restore into a freshly slotted optimizer.
        let (m, v) = a.slot_moments(s);
        let snapshot = vec![(m.to_vec(), v.to_vec())];
        let mut b = Adam::new(0.01);
        let sb = b.slot(2, 3);
        b.restore_state(a.lr(), a.step_count(), snapshot).unwrap();
        assert_eq!(b.lr(), a.lr());
        assert_eq!(b.step_count(), a.step_count());
        // Identical updates from here on.
        let (mut pa, mut pb) = (p.clone(), p);
        a.tick();
        b.tick();
        a.update(s, &mut pa, &[0.3, -0.1, 0.0, 0.7, -0.2, 0.05]);
        b.update(sb, &mut pb, &[0.3, -0.1, 0.0, 0.7, -0.2, 0.05]);
        assert_eq!(pa, pb);
    }

    #[test]
    fn restore_state_rejects_mismatched_shapes() {
        let mut a = Adam::new(0.05);
        let _ = a.slot(2, 2);
        assert!(a.restore_state(0.05, 1, vec![]).is_err());
        assert!(a
            .restore_state(0.05, 1, vec![(vec![0.0; 3], vec![0.0; 4])])
            .is_err());
        assert!(a.restore_state(-1.0, 1, vec![(vec![0.0; 4], vec![0.0; 4])]).is_err());
        assert!(a.restore_state(0.05, 1, vec![(vec![0.0; 4], vec![0.0; 4])]).is_ok());
    }

    #[test]
    fn adam_step_chunked_apply_is_bitwise_identical() {
        // The parallel step tail splits (param, grad, m, v) at arbitrary
        // consistent boundaries; elementwise updates must not care.
        let n = 37;
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 - 18.0) * 0.07).collect();
        let mut a = Adam::new(0.02);
        let s = a.slot(1, n);
        let mut b = a.clone();
        let mut pa: Vec<f32> = (0..n).map(|i| (i as f32) * 0.11).collect();
        let mut pb = pa.clone();
        a.tick();
        b.tick();
        a.update(s, &mut pa, &grad);
        let step = b.step_params();
        let (m, v) = b.slot_state_mut(s);
        for (cut_lo, cut_hi) in [(0, 5), (5, 20), (20, n)] {
            step.apply(
                &mut pb[cut_lo..cut_hi],
                &grad[cut_lo..cut_hi],
                &mut m[cut_lo..cut_hi],
                &mut v[cut_lo..cut_hi],
            );
        }
        assert_eq!(pa, pb);
        let (ma, va) = a.slot_moments(s);
        assert_eq!(ma, &m[..]);
        assert_eq!(va, &v[..]);
    }

    #[test]
    fn update_matrix_matches_slice_update_bitwise() {
        let grad = Matrix::from_rows(&[&[0.3, -0.2], &[1.5, 0.0]]);
        let mut a = Adam::new(0.05);
        let sa = a.slot(2, 2);
        let mut b = a.clone();
        let mut pm = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut pv = pm.data().to_vec();
        a.tick();
        b.tick();
        a.update_matrix(sa, &mut pm, &grad);
        b.update(sa, &mut pv, grad.data());
        assert_eq!(pm.data(), &pv[..]);
    }
}
