//! Optimizers: SGD with momentum and Adam.

use crate::Matrix;

/// A gradient-descent update rule over (matrix, bias-vector) parameter
/// pairs. Each [`Dense`](crate::Dense) or variational layer registers one
/// slot per parameter tensor via `slot()` and applies updates through it.
pub trait Optimizer {
    /// Allocates optimizer state for a parameter tensor of the given shape
    /// and returns its slot id.
    fn slot(&mut self, rows: usize, cols: usize) -> usize;

    /// Applies one update: `param -= step(grad)` for the slot.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Applies one update to a matrix parameter **in place** — no
    /// round-trip through a temporary `Vec` (the training hot loop calls
    /// this once per tensor per minibatch).
    fn update_matrix(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        self.update(slot, param.data_mut(), grad.data());
    }

    /// Advances the global step counter (call once per minibatch).
    fn tick(&mut self) {}
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use vibnn_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1, 0.9);
/// let s = opt.slot(1, 2);
/// let mut p = [1.0f32, 1.0];
/// opt.update(s, &mut p, &[1.0, 0.0]);
/// assert!(p[0] < 1.0 && p[1] == 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.velocity.push(vec![0.0; rows * cols]);
        self.velocity.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let v = &mut self.velocity[slot];
        assert_eq!(v.len(), param.len(), "slot/param size mismatch");
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        for ((p, g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel + g;
            *p -= self.lr * *vel;
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard defaults β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn slot(&mut self, rows: usize, cols: usize) -> usize {
        self.m.push(vec![0.0; rows * cols]);
        self.v.push(vec![0.0; rows * cols]);
        self.m.len() - 1
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad size mismatch");
        let t = (self.t.max(1)) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), param.len(), "slot/param size mismatch");
        // Zipped iteration: bounds checks provably elided, so the
        // moment/sqrt pipeline vectorizes (this runs once per parameter
        // per minibatch — ~400k elements for the paper's MNIST net).
        for (((p, &g), m), v) in param.iter_mut().zip(grad).zip(m.iter_mut()).zip(v.iter_mut())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn tick(&mut self) {
        self.t += 1;
    }
}

/// Applies an optimizer update to a matrix parameter (free-function form
/// of [`Optimizer::update_matrix`], kept for `dyn Optimizer` call sites).
pub fn update_matrix(opt: &mut dyn Optimizer, slot: usize, param: &mut Matrix, grad: &Matrix) {
    opt.update_matrix(slot, param, grad);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with each optimizer.
    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let s = opt.slot(1, 1);
        let mut x = [0.0f32];
        for _ in 0..iters {
            opt.tick();
            let grad = [2.0 * (x[0] - 3.0)];
            opt.update(s, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = converges(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = converges(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = converges(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_progress() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut heavy = Sgd::new(0.01, 0.9);
        let xp = converges(&mut plain, 50);
        let xh = converges(&mut heavy, 50);
        assert!(
            (xh - 3.0).abs() < (xp - 3.0).abs(),
            "momentum {xh} vs plain {xp}"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    fn update_matrix_matches_slice_update_bitwise() {
        let grad = Matrix::from_rows(&[&[0.3, -0.2], &[1.5, 0.0]]);
        let mut a = Adam::new(0.05);
        let sa = a.slot(2, 2);
        let mut b = a.clone();
        let mut pm = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut pv = pm.data().to_vec();
        a.tick();
        b.tick();
        a.update_matrix(sa, &mut pm, &grad);
        b.update(sa, &mut pv, grad.data());
        assert_eq!(pm.data(), &pv[..]);
    }
}
