//! The functional fixed-point datapath: exactly the arithmetic the
//! accelerator performs, vectorized for fast accuracy evaluation.
//!
//! Semantics (paper Sections 5.1–5.3):
//!
//! 1. The weight generator computes `w = µ + σ·ε` in B-bit fixed point:
//!    `σ_q · ε_q` is requantized to the weight format and added to `µ_q`
//!    with saturation.
//! 2. Each PE multiplies B-bit activations by B-bit weights into a wide
//!    accumulator (no intermediate rounding — the adder tree of Figure 11),
//!    adds the bias, requantizes once to the activation format, and applies
//!    ReLU.
//! 3. The final layer's logits are dequantized; softmax and Monte Carlo
//!    averaging (equation 6) happen at full precision on the host, as they
//!    would on the CPU collecting accelerator outputs.
//!
//! The host-side Monte Carlo mean goes through `vibnn_bnn::reduce_mean`
//! and therefore inherits the workspace-wide fixed-lane accumulation
//! contract (`vibnn_nn::LANES` partial-sum chains, element `k` in lane
//! `k % LANES`, lanes folded in ascending order). The fixed-point MACs
//! inside the datapath are integer arithmetic — exact and associative —
//! so quantized forward passes themselves are unaffected by the lane
//! rule; only the float averaging step follows it.

use vibnn_bnn::{parallel_fork_map, reduce_mean, BnnParams};
use vibnn_fixed::{choose_format, MacAccumulator, QFormat};
use vibnn_grng::{GaussianSource, StreamFork};
use vibnn_nn::{softmax_rows, Matrix};

/// Fixed-point formats for every signal class in the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizationSpec {
    /// Operand bit length `B`.
    pub bit_len: u32,
    /// Format for weights (µ and sampled w).
    pub weight_fmt: QFormat,
    /// Format for σ values.
    pub sigma_fmt: QFormat,
    /// Format for activations (inputs and layer outputs).
    pub act_fmt: QFormat,
    /// Format for the unit Gaussian ε samples.
    pub eps_fmt: QFormat,
}

impl QuantizationSpec {
    /// Calibrates formats for `params` at `bit_len` bits.
    ///
    /// Weight range covers `max|µ| + 2·max σ` (rarer ε excursions are
    /// absorbed by saturation); ε gets ±4 range; activations are
    /// calibrated from `act_max` (the largest |activation| observed on a
    /// float calibration pass — see [`QuantizedBnn::from_params`]).
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` is outside `2..=32` or `act_max <= 0`.
    pub fn calibrate(params: &BnnParams, bit_len: u32, act_max: f64) -> Self {
        assert!(act_max > 0.0, "activation range must be positive");
        let mut mu_max = 0.0f32;
        let mut sigma_max = 0.0f32;
        for w in &params.weight_mu {
            for &v in w.data() {
                mu_max = mu_max.max(v.abs());
            }
        }
        for s in &params.weight_sigma {
            for &v in s.data() {
                sigma_max = sigma_max.max(v.abs());
            }
        }
        for b in &params.bias_mu {
            for &v in b {
                mu_max = mu_max.max(v.abs());
            }
        }
        for b in &params.bias_sigma {
            for &v in b {
                sigma_max = sigma_max.max(v.abs());
            }
        }
        let w_range = f64::from(mu_max) + 2.0 * f64::from(sigma_max);
        Self {
            bit_len,
            weight_fmt: choose_format(bit_len, w_range.max(1e-3)),
            sigma_fmt: choose_format(bit_len, f64::from(sigma_max).max(1e-3)),
            act_fmt: choose_format(bit_len, act_max),
            eps_fmt: choose_format(bit_len, 4.0),
        }
    }
}

/// One quantized layer: integer µ/σ tables plus biases.
#[derive(Debug, Clone)]
struct QLayer {
    in_dim: usize,
    out_dim: usize,
    mu: Vec<i32>,
    sigma: Vec<i32>,
    bias_mu: Vec<i32>,
    bias_sigma: Vec<i32>,
}

/// A BNN deployed on the fixed-point datapath.
///
/// # Example
///
/// ```
/// use vibnn_bnn::{Bnn, BnnConfig};
/// use vibnn_grng::BoxMullerGrng;
/// use vibnn_hw::QuantizedBnn;
/// use vibnn_nn::Matrix;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 2]), 1);
/// let calib = Matrix::zeros(4, 4);
/// let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
/// let mut eps = BoxMullerGrng::new(2);
/// let probs = q.predict_proba_mc(&calib, 4, &mut eps);
/// assert_eq!(probs.cols(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedBnn {
    spec: QuantizationSpec,
    layers: Vec<QLayer>,
}

impl QuantizedBnn {
    /// Quantizes `params` at `bit_len` bits, calibrating the activation
    /// format with a float forward pass over `calibration` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty or shapes mismatch.
    pub fn from_params(params: &BnnParams, bit_len: u32, calibration: &Matrix) -> Self {
        assert!(calibration.rows() > 0, "need calibration inputs");
        assert_eq!(
            calibration.cols(),
            params.weight_mu[0].rows(),
            "calibration width mismatch"
        );
        // Float mean-forward pass to find the activation range; a modest
        // margin absorbs weight-sampling noise, and saturation handles the
        // rare excursions beyond it (clipping outliers costs far less
        // accuracy than starving the format of fraction bits).
        let mut act_max = 1.0f64;
        let mut h = calibration.clone();
        let layers = params.layers();
        for l in 0..layers {
            let mut y = h.matmul(&params.weight_mu[l]);
            y.add_row_broadcast(&params.bias_mu[l]);
            for &v in y.data() {
                act_max = act_max.max(f64::from(v.abs()));
            }
            if l + 1 < layers {
                y.map_inplace(|v| v.max(0.0));
            }
            h = y;
        }
        let spec = QuantizationSpec::calibrate(params, bit_len, act_max * 1.3);
        Self::with_spec(params, spec)
    }

    /// Quantizes with an explicit spec.
    pub fn with_spec(params: &BnnParams, spec: QuantizationSpec) -> Self {
        let mut layers = Vec::with_capacity(params.layers());
        for l in 0..params.layers() {
            let mu_m = &params.weight_mu[l];
            let sg_m = &params.weight_sigma[l];
            layers.push(QLayer {
                in_dim: mu_m.rows(),
                out_dim: mu_m.cols(),
                mu: mu_m
                    .data()
                    .iter()
                    .map(|&v| spec.weight_fmt.quantize_f32(v))
                    .collect(),
                sigma: sg_m
                    .data()
                    .iter()
                    .map(|&v| spec.sigma_fmt.quantize_f32(v))
                    .collect(),
                bias_mu: params.bias_mu[l]
                    .iter()
                    .map(|&v| spec.weight_fmt.quantize_f32(v))
                    .collect(),
                bias_sigma: params.bias_sigma[l]
                    .iter()
                    .map(|&v| spec.sigma_fmt.quantize_f32(v))
                    .collect(),
            });
        }
        Self { spec, layers }
    }

    /// The quantization formats in use.
    pub fn spec(&self) -> &QuantizationSpec {
        &self.spec
    }

    /// Layer sizes `[input, hidden…, output]`.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut v = vec![self.layers[0].in_dim];
        v.extend(self.layers.iter().map(|l| l.out_dim));
        v
    }

    /// Total weight count (µ entries).
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.mu.len()).sum()
    }

    /// Samples one full set of quantized weights `w_q = µ_q + requant(σ_q·ε_q)`
    /// — the weight generator's output for one Monte Carlo sample.
    /// Returned per layer as row-major `in_dim × out_dim` tables, plus
    /// biases.
    ///
    /// ε is drawn through the block API: one [`GaussianSource::fill`] per
    /// weight table and one per bias row (the same stream order as
    /// per-scalar draws), so hardware-style generators run their batched
    /// kernels instead of being called once per weight.
    pub fn sample_weights(
        &self,
        eps_src: &mut impl GaussianSource,
    ) -> Vec<(Vec<i32>, Vec<i32>)> {
        self.sample_weights_with(eps_src, &mut Vec::new())
    }

    /// [`Self::sample_weights`] drawing into a caller-owned ε scratch
    /// buffer, so repeated sampling (the Monte Carlo hot loop) allocates
    /// the scratch once per worker instead of once per sample.
    pub fn sample_weights_with(
        &self,
        eps_src: &mut impl GaussianSource,
        eps: &mut Vec<f64>,
    ) -> Vec<(Vec<i32>, Vec<i32>)> {
        let spec = &self.spec;
        let prod_frac = spec.sigma_fmt.frac_bits() + spec.eps_fmt.frac_bits();
        let max_len = self
            .layers
            .iter()
            .map(|l| l.mu.len())
            .max()
            .unwrap_or(0);
        eps.resize(max_len, 0.0);
        let sample_into = |dst: &mut Vec<i32>, mu: &[i32], sigma: &[i32], eps: &[f64]| {
            for ((&mu, &sg), &e) in mu.iter().zip(sigma).zip(eps) {
                let e = spec.eps_fmt.quantize(e);
                let noise = spec
                    .weight_fmt
                    .requantize(i64::from(sg) * i64::from(e), prod_frac);
                dst.push(spec.weight_fmt.saturate(i64::from(mu) + i64::from(noise)));
            }
        };
        self.layers
            .iter()
            .map(|layer| {
                let n = layer.mu.len();
                eps_src.fill(&mut eps[..n]);
                let mut w = Vec::with_capacity(n);
                sample_into(&mut w, &layer.mu, &layer.sigma, &eps[..n]);
                let nb = layer.bias_mu.len();
                eps_src.fill(&mut eps[..nb]);
                let mut b = Vec::with_capacity(nb);
                sample_into(&mut b, &layer.bias_mu, &layer.bias_sigma, &eps[..nb]);
                (w, b)
            })
            .collect()
    }

    /// Forward pass of one batch through one sampled weight set; returns
    /// dequantized logits. This is the reference semantics the cycle
    /// simulator must match bit-for-bit.
    pub fn forward_with_weights(
        &self,
        x: &Matrix,
        weights: &[(Vec<i32>, Vec<i32>)],
    ) -> Matrix {
        assert_eq!(weights.len(), self.layers.len(), "weight set mismatch");
        let spec = &self.spec;
        let act_f = spec.act_fmt.frac_bits();
        let w_f = spec.weight_fmt.frac_bits();
        // Quantize inputs.
        let mut act: Vec<Vec<i32>> = (0..x.rows())
            .map(|r| {
                x.row(r)
                    .iter()
                    .map(|&v| spec.act_fmt.quantize_f32(v))
                    .collect()
            })
            .collect();
        let last = self.layers.len() - 1;
        for (l, (layer, (w, b))) in self.layers.iter().zip(weights).enumerate() {
            let mut next: Vec<Vec<i32>> = Vec::with_capacity(act.len());
            for row in &act {
                assert_eq!(row.len(), layer.in_dim, "activation width mismatch");
                let mut out_row = Vec::with_capacity(layer.out_dim);
                for j in 0..layer.out_dim {
                    let mut acc = MacAccumulator::new();
                    for (i, &xi) in row.iter().enumerate() {
                        acc.mac(xi, w[i * layer.out_dim + j]);
                    }
                    // Bias enters at the accumulator scale (act_f + w_f):
                    // shift the weight-format bias by act_f.
                    acc.add_raw(i64::from(b[j]) << act_f);
                    let mut v = spec.act_fmt.requantize(acc.raw(), act_f + w_f);
                    if l < last {
                        v = vibnn_fixed::relu_raw(v);
                    }
                    out_row.push(v);
                }
                next.push(out_row);
            }
            act = next;
        }
        // Dequantize logits.
        let out_dim = self.layers[last].out_dim;
        let mut logits = Matrix::zeros(act.len(), out_dim);
        for (r, row) in act.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                logits[(r, c)] = spec.act_fmt.dequantize(v) as f32;
            }
        }
        logits
    }

    /// Monte Carlo predictive probabilities on the fixed-point datapath
    /// (equation 6 with hardware weight sampling).
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn predict_proba_mc(
        &self,
        x: &Matrix,
        samples: usize,
        eps_src: &mut impl GaussianSource,
    ) -> Matrix {
        assert!(samples > 0, "need at least one Monte Carlo sample");
        let out_dim = self.layers.last().expect("layers").out_dim;
        let mut acc = Matrix::zeros(x.rows(), out_dim);
        for _ in 0..samples {
            let weights = self.sample_weights(eps_src);
            let mut probs = self.forward_with_weights(x, &weights);
            softmax_rows(&mut probs);
            acc.axpy(1.0, &probs);
        }
        acc.scale(1.0 / samples as f32);
        acc
    }

    /// Monte Carlo predictive probabilities with the sample ensemble
    /// spread across `threads` `std::thread::scope` workers.
    ///
    /// Mirrors `vibnn_bnn::Bnn::predict_proba_mc_parallel`: sample `s`
    /// draws its ε from `eps_src.fork(s)` and the per-sample softmax
    /// outputs are reduced in ascending sample order, so the result is
    /// bit-identical for every thread count. `threads == 0` uses the
    /// `VIBNN_THREADS` knob.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn predict_proba_mc_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        samples: usize,
        eps_src: &S,
        threads: usize,
    ) -> Matrix {
        reduce_mean(&self.predict_proba_mc_members_parallel(x, samples, eps_src, threads))
    }

    /// The per-sample softmax outputs behind
    /// [`Self::predict_proba_mc_parallel`], returned in ascending sample
    /// order — the batch entry point for callers that need the Monte
    /// Carlo *members* (predictive-uncertainty estimates, the serving
    /// engine) rather than just their mean.
    ///
    /// Sample `s` draws its ε from `eps_src.fork(s)` exactly as the mean
    /// path does, so `vibnn_bnn::reduce_mean` over the returned members is
    /// **bit-identical** to [`Self::predict_proba_mc_parallel`] at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn predict_proba_mc_members_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        samples: usize,
        eps_src: &S,
        threads: usize,
    ) -> Vec<Matrix> {
        assert!(samples > 0, "need at least one Monte Carlo sample");
        parallel_fork_map(samples, threads, eps_src, |_, src, eps_scratch: &mut Vec<f64>| {
            let weights = self.sample_weights_with(src, eps_scratch);
            let mut probs = self.forward_with_weights(x, &weights);
            softmax_rows(&mut probs);
            probs
        })
    }

    /// Accuracy under hardware MC inference.
    pub fn evaluate_mc(
        &self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
        eps_src: &mut impl GaussianSource,
    ) -> f64 {
        vibnn_nn::accuracy(&self.predict_proba_mc(x, samples, eps_src), labels)
    }

    /// Accuracy under parallel hardware MC inference (see
    /// [`Self::predict_proba_mc_parallel`]).
    pub fn evaluate_mc_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
        eps_src: &S,
        threads: usize,
    ) -> f64 {
        vibnn_nn::accuracy(
            &self.predict_proba_mc_parallel(x, samples, eps_src, threads),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_bnn::{Bnn, BnnConfig};
    use vibnn_grng::BoxMullerGrng;
    use vibnn_nn::GaussianInit;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..4 {
                let v = rng.next_gaussian() as f32;
                x[(r, c)] = v;
                s += v;
            }
            y.push(usize::from(s > 0.0));
        }
        (x, y)
    }

    fn trained_bnn(seed: u64) -> (Bnn, Matrix, Vec<usize>) {
        let (x, y) = toy_data(512, seed);
        let mut bnn = Bnn::new(BnnConfig::new(&[4, 16, 2]).with_lr(0.02), seed ^ 1);
        for _ in 0..40 {
            bnn.train_epoch(&x, &y, 64);
        }
        (bnn, x, y)
    }

    #[test]
    fn eight_bit_accuracy_close_to_float() {
        // The Table 6 claim: 8-bit hardware degrades accuracy only
        // slightly vs the float software BNN.
        let (bnn, x, y) = trained_bnn(3);
        let float_acc = bnn.evaluate_mean(&x, &y);
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &x.rows_slice(0, 64));
        let mut eps = BoxMullerGrng::new(5);
        let q_acc = q.evaluate_mc(&x, &y, 8, &mut eps);
        assert!(
            q_acc > float_acc - 0.05,
            "8-bit acc {q_acc} vs float {float_acc}"
        );
    }

    #[test]
    fn accuracy_degrades_at_very_low_bit_lengths() {
        // The Figure 18 mechanism: too few bits destroy accuracy.
        let (bnn, x, y) = trained_bnn(7);
        let calib = x.rows_slice(0, 64);
        let mut eps_hi = BoxMullerGrng::new(9);
        let mut eps_lo = BoxMullerGrng::new(9);
        let hi = QuantizedBnn::from_params(&bnn.params(), 8, &calib)
            .evaluate_mc(&x, &y, 8, &mut eps_hi);
        let lo = QuantizedBnn::from_params(&bnn.params(), 3, &calib)
            .evaluate_mc(&x, &y, 8, &mut eps_lo);
        assert!(hi > lo, "8-bit {hi} should beat 3-bit {lo}");
    }

    #[test]
    fn sample_weights_are_within_format_range() {
        let (bnn, x, _) = trained_bnn(11);
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &x.rows_slice(0, 16));
        let mut eps = BoxMullerGrng::new(13);
        for (w, b) in q.sample_weights(&mut eps) {
            let (lo, hi) = (q.spec().weight_fmt.min_raw(), q.spec().weight_fmt.max_raw());
            assert!(w.iter().all(|&v| v >= lo && v <= hi));
            assert!(b.iter().all(|&v| v >= lo && v <= hi));
        }
    }

    #[test]
    fn sampled_weights_scatter_around_mu() {
        let (bnn, x, _) = trained_bnn(17);
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &x.rows_slice(0, 16));
        let mut eps = BoxMullerGrng::new(19);
        let a = q.sample_weights(&mut eps);
        let b = q.sample_weights(&mut eps);
        // Two samples should differ somewhere (σ > 0).
        assert_ne!(a[0].0, b[0].0, "weight samples identical");
    }

    #[test]
    fn zero_sigma_makes_weights_deterministic() {
        let (bnn, x, _) = trained_bnn(23);
        let mut params = bnn.params();
        for s in &mut params.weight_sigma {
            s.scale(0.0);
        }
        for b in &mut params.bias_sigma {
            for v in b.iter_mut() {
                *v = 0.0;
            }
        }
        let q = QuantizedBnn::from_params(&params, 8, &x.rows_slice(0, 16));
        let mut e1 = BoxMullerGrng::new(29);
        let mut e2 = BoxMullerGrng::new(31);
        assert_eq!(q.sample_weights(&mut e1), q.sample_weights(&mut e2));
    }

    #[test]
    fn layer_sizes_and_weight_count() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 16, 2]), 1);
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &Matrix::zeros(2, 4));
        assert_eq!(q.layer_sizes(), vec![4, 16, 2]);
        assert_eq!(q.total_weights(), 4 * 16 + 16 * 2);
    }

    #[test]
    #[should_panic(expected = "need calibration inputs")]
    fn empty_calibration_panics() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 4, 2]), 1);
        let _ = QuantizedBnn::from_params(&bnn.params(), 8, &Matrix::zeros(0, 4));
    }
}
