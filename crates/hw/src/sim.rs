//! Cycle-ticked component simulation of the accelerator.
//!
//! [`CycleAccelerator`] executes a quantized BNN inference the way the
//! hardware does — PE-set by PE-set, iteration by iteration — while
//! counting cycles and memory traffic. Its numeric outputs are
//! bit-identical to [`crate::QuantizedBnn::forward_with_weights`] (same
//! integer arithmetic, same order), and its cycle count equals the
//! closed-form [`crate::Schedule`]; both equivalences are enforced by
//! tests.

use vibnn_fixed::MacAccumulator;
use vibnn_grng::{GaussianSource, StreamFork};

use crate::controller::{LAYER_CONTROL, PIPELINE_FILL};
use crate::{AcceleratorConfig, QuantizedBnn, Schedule};

/// Counters accumulated during simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// IFMem word reads (one per iteration cycle; the word feeds all PEs —
    /// the Section 5.4.1 access-reduction property).
    pub ifmem_reads: u64,
    /// IFMem word writes (one per PE-set result).
    pub ifmem_writes: u64,
    /// WPMem word reads (one per PE-set per iteration cycle).
    pub wpmem_reads: u64,
    /// Unit Gaussians consumed by the weight generator.
    pub eps_consumed: u64,
    /// MAC operations executed.
    pub macs: u64,
}

/// One request's share of the simulated hardware cost: the clock cycles
/// the accelerator spent on it and the energy those cycles dissipate at
/// the configured clock under the [`crate::power`] system model.
///
/// Produced per row by [`CycleAccelerator::infer_batch_costed`] and
/// [`CycleAccelerator::infer_forked`]; the per-request cycle counts sum
/// exactly to the batch-level [`SimStats::cycles`] delta (pinned by a
/// regression test), so serve-side cost attribution is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestCost {
    /// Clock cycles charged to this request (all its MC samples).
    pub cycles: u64,
    /// Energy in nanojoules for those cycles at the configured clock.
    pub energy_nj: f64,
}

/// The ticking accelerator model.
#[derive(Debug, Clone)]
pub struct CycleAccelerator {
    cfg: AcceleratorConfig,
    qbnn: QuantizedBnn,
    stats: SimStats,
}

impl CycleAccelerator {
    /// Builds the simulator for a deployed quantized network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: AcceleratorConfig, qbnn: QuantizedBnn) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        Self {
            cfg,
            qbnn,
            stats: SimStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The deployed network.
    pub fn network(&self) -> &QuantizedBnn {
        &self.qbnn
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Runs one image through one Monte Carlo sample, cycle by cycle,
    /// with weights freshly sampled from `eps_src` by the weight
    /// generator. Returns the dequantized logits.
    pub fn infer_sample(&mut self, input: &[f32], eps_src: &mut impl GaussianSource) -> Vec<f32> {
        let weights = self.qbnn.sample_weights(eps_src);
        self.stats.eps_consumed += self
            .qbnn
            .layer_sizes()
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64)
            .sum::<u64>();
        self.run_ticked(input, &weights)
    }

    /// Batch mode: runs every row of `inputs` through all configured MC
    /// samples and returns one row of averaged class probabilities per
    /// image. Cycle and memory-traffic counters accumulate across the
    /// whole batch, and the weight generator consumes its ε stream through
    /// the block API (one [`GaussianSource::fill`] per weight table), just
    /// as the hardware's batched generators would.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has zero rows or the feature width mismatches.
    pub fn infer_batch(
        &mut self,
        inputs: &vibnn_nn::Matrix,
        eps_src: &mut impl GaussianSource,
    ) -> vibnn_nn::Matrix {
        self.infer_batch_costed(inputs, eps_src).0
    }

    /// [`Self::infer_batch`] with exact per-request cost attribution:
    /// alongside the probability matrix it returns one [`RequestCost`]
    /// per input row. Outputs are bit-identical to `infer_batch` (same
    /// loop, same ε stream order), and the per-row cycle counts sum to
    /// the batch's total [`SimStats::cycles`] delta exactly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has zero rows or the feature width mismatches.
    pub fn infer_batch_costed(
        &mut self,
        inputs: &vibnn_nn::Matrix,
        eps_src: &mut impl GaussianSource,
    ) -> (vibnn_nn::Matrix, Vec<RequestCost>) {
        assert!(inputs.rows() > 0, "need at least one image");
        let classes = *self.qbnn.layer_sizes().last().expect("sizes");
        let mut out = vibnn_nn::Matrix::zeros(inputs.rows(), classes);
        let mut costs = Vec::with_capacity(inputs.rows());
        for r in 0..inputs.rows() {
            let before = self.stats.cycles;
            let probs = self.infer(inputs.row(r), eps_src);
            out.row_mut(r).copy_from_slice(&probs);
            let cycles = self.stats.cycles - before;
            costs.push(RequestCost {
                cycles,
                energy_nj: self.energy_nj(cycles),
            });
        }
        (out, costs)
    }

    /// Serving entry point: runs one image through all configured MC
    /// samples where sample `s` draws its weights from the substream
    /// `eps.fork(s)` — the same per-sample forking convention the
    /// software and quantized-host serving paths use. Because each row
    /// re-derives every sample's substream from scratch, results are
    /// independent of batch composition and arrival order.
    ///
    /// Returns the averaged class probabilities, the per-sample softmax
    /// probability vectors (for MC-spread statistics), and this
    /// request's exact [`RequestCost`].
    pub fn infer_forked<S: StreamFork>(
        &mut self,
        input: &[f32],
        eps: &S,
    ) -> (Vec<f32>, Vec<Vec<f64>>, RequestCost) {
        let classes = *self.qbnn.layer_sizes().last().expect("sizes");
        let before = self.stats.cycles;
        let mut acc = vec![0.0f64; classes];
        let mut members = Vec::with_capacity(self.cfg.mc_samples);
        for s in 0..self.cfg.mc_samples {
            let mut eps_s = eps.fork(s as u64);
            let logits = self.infer_sample(input, &mut eps_s);
            let probs = softmax(&logits);
            for (a, &p) in acc.iter_mut().zip(&probs) {
                *a += p;
            }
            members.push(probs);
        }
        let probs: Vec<f32> = acc
            .iter()
            .map(|&v| (v / self.cfg.mc_samples as f64) as f32)
            .collect();
        let cycles = self.stats.cycles - before;
        let cost = RequestCost {
            cycles,
            energy_nj: self.energy_nj(cycles),
        };
        (probs, members, cost)
    }

    /// One Monte Carlo member of [`Self::infer_forked`], on demand:
    /// runs `input` through sample `sample`, drawing weights from the
    /// substream `eps.fork(sample)` — exactly the member that
    /// `infer_forked` would compute at that position — and returns its
    /// softmax probability vector. Calling this for `sample` in
    /// `0..mc_samples` and averaging reproduces `infer_forked` bit for
    /// bit; stopping earlier reproduces a deployment configured with
    /// that smaller sample count. Cycle and memory counters accumulate
    /// as usual, so callers can attribute per-sample cost through
    /// [`Self::stats`] deltas and [`Self::energy_nj`].
    pub fn infer_sample_forked<S: StreamFork>(
        &mut self,
        input: &[f32],
        sample: u64,
        eps: &S,
    ) -> Vec<f64> {
        let mut eps_s = eps.fork(sample);
        let logits = self.infer_sample(input, &mut eps_s);
        softmax(&logits)
    }

    /// System power draw in watts for this deployment under the
    /// [`crate::power`] model (static + clock-scaled dynamic terms for
    /// the PE array, memories, and the configured GRNG bank).
    pub fn power_w(&self) -> f64 {
        let sizes = self.qbnn.layer_sizes();
        let widest = sizes.iter().copied().max().unwrap_or(0);
        crate::power::system_power_w(&self.cfg, self.qbnn.total_weights(), widest)
    }

    /// Energy in nanojoules dissipated by `cycles` clock cycles at the
    /// configured clock frequency and modeled system power.
    pub fn energy_nj(&self, cycles: u64) -> f64 {
        // seconds = cycles / (clock_mhz * 1e6); nJ = seconds * W * 1e9.
        cycles as f64 * self.power_w() * 1e3 / self.cfg.clock_mhz
    }

    /// Runs one image through all configured MC samples and returns the
    /// averaged class probabilities.
    pub fn infer(&mut self, input: &[f32], eps_src: &mut impl GaussianSource) -> Vec<f32> {
        let classes = *self.qbnn.layer_sizes().last().expect("sizes");
        let mut acc = vec![0.0f64; classes];
        for _ in 0..self.cfg.mc_samples {
            let logits = self.infer_sample(input, eps_src);
            let probs = softmax(&logits);
            for (a, p) in acc.iter_mut().zip(probs) {
                *a += p;
            }
        }
        acc.iter()
            .map(|&v| (v / self.cfg.mc_samples as f64) as f32)
            .collect()
    }

    /// The ticked execution of one sample with explicit weights. Numeric
    /// results are bit-identical to the functional datapath.
    fn run_ticked(&mut self, input: &[f32], weights: &[(Vec<i32>, Vec<i32>)]) -> Vec<f32> {
        let spec = *self.qbnn.spec();
        let sizes = self.qbnn.layer_sizes();
        assert_eq!(input.len(), sizes[0], "input width mismatch");
        let m = self.cfg.total_pes();
        let n = self.cfg.pe_inputs;
        let t = self.cfg.pe_sets as u64;
        let act_f = spec.act_fmt.frac_bits();
        let w_f = spec.weight_fmt.frac_bits();

        // IFMem bank 0 holds the quantized input features.
        let mut activations: Vec<i32> = input
            .iter()
            .map(|&v| spec.act_fmt.quantize_f32(v))
            .collect();

        let last = weights.len() - 1;
        for (l, (w, b)) in weights.iter().enumerate() {
            let (d_in, d_out) = (sizes[l], sizes[l + 1]);
            let rounds = d_out.div_ceil(m);
            let iterations = d_in.div_ceil(n);
            let mut next: Vec<i32> = vec![0; d_out];
            for round in 0..rounds {
                // Each PE owns one output neuron this round.
                let base = round * m;
                let active = m.min(d_out - base);
                let mut accs: Vec<MacAccumulator> =
                    vec![MacAccumulator::new(); active];
                for it in 0..iterations {
                    // One cycle: the IFMem word (N features) broadcasts to
                    // every PE; each PE-set reads one WPMem word.
                    self.stats.cycles += 1;
                    self.stats.ifmem_reads += 1;
                    self.stats.wpmem_reads += t;
                    let lo = it * n;
                    let hi = ((it + 1) * n).min(d_in);
                    for (pe, acc) in accs.iter_mut().enumerate() {
                        let neuron = base + pe;
                        for i in lo..hi {
                            acc.mac(activations[i], w[i * d_out + neuron]);
                            self.stats.macs += 1;
                        }
                    }
                }
                // Bias + requantize + ReLU at pipeline drain; results are
                // collected by the memory distributor one PE-set word at a
                // time.
                for (pe, acc) in accs.iter_mut().enumerate() {
                    let neuron = base + pe;
                    acc.add_raw(i64::from(b[neuron]) << act_f);
                    let mut v = spec.act_fmt.requantize(acc.raw(), act_f + w_f);
                    if l < last {
                        v = vibnn_fixed::relu_raw(v);
                    }
                    next[neuron] = v;
                }
                self.stats.ifmem_writes += t.min(active.div_ceil(n) as u64);
            }
            // Pipeline fill, write-back drain, and layer control overhead.
            self.stats.cycles += PIPELINE_FILL + t + LAYER_CONTROL;
            activations = next;
        }
        activations
            .iter()
            .map(|&v| spec.act_fmt.dequantize(v) as f32)
            .collect()
    }

    /// Simulated throughput (images/s) for the deployed network at the
    /// configured clock: uses the verified closed-form schedule.
    pub fn images_per_second(&self) -> f64 {
        Schedule::new(&self.cfg, &self.qbnn.layer_sizes()).images_per_second()
    }
}

fn softmax(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = logits.iter().map(|&v| f64::from(v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_bnn::{Bnn, BnnConfig};
    use vibnn_grng::BoxMullerGrng;
    use vibnn_nn::Matrix;

    fn small_cfg() -> AcceleratorConfig {
        AcceleratorConfig {
            pe_sets: 2,
            pes_per_set: 4,
            pe_inputs: 4,
            bit_len: 8,
            max_word_size: 1024,
            mc_samples: 2,
            ..AcceleratorConfig::paper()
        }
    }

    fn deployed(seed: u64) -> (CycleAccelerator, QuantizedBnn, Matrix) {
        let bnn = Bnn::new(BnnConfig::new(&[12, 16, 3]), seed);
        let calib = {
            let mut m = Matrix::zeros(4, 12);
            for (i, v) in m.data_mut().iter_mut().enumerate() {
                *v = (i as f32 * 0.137).sin();
            }
            m
        };
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
        (
            CycleAccelerator::new(small_cfg(), q.clone()),
            q,
            calib,
        )
    }

    #[test]
    fn ticked_outputs_match_functional_datapath() {
        let (mut sim, q, calib) = deployed(1);
        // Use identical eps streams for both paths.
        let mut eps_a = BoxMullerGrng::new(42);
        let mut eps_b = BoxMullerGrng::new(42);
        let weights = q.sample_weights(&mut eps_a);
        let functional = q.forward_with_weights(&calib.rows_slice(0, 1), &weights);
        let sim_out = {
            let w2 = q.sample_weights(&mut eps_b);
            sim.run_ticked(calib.row(0), &w2)
        };
        for (c, &f) in functional.row(0).iter().enumerate() {
            assert!(
                (sim_out[c] - f).abs() < 1e-9,
                "logit {c}: sim {} vs functional {f}",
                sim_out[c]
            );
        }
    }

    #[test]
    fn cycle_count_matches_schedule() {
        let (mut sim, _, calib) = deployed(2);
        let sched = Schedule::new(&small_cfg(), &[12, 16, 3]);
        let mut eps = BoxMullerGrng::new(7);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        assert_eq!(sim.stats().cycles, sched.cycles_per_sample());
    }

    #[test]
    fn full_inference_counts_all_samples() {
        let (mut sim, _, calib) = deployed(3);
        let sched = Schedule::new(&small_cfg(), &[12, 16, 3]);
        let mut eps = BoxMullerGrng::new(9);
        let probs = sim.infer(calib.row(0), &mut eps);
        assert_eq!(sim.stats().cycles, sched.cycles_per_image());
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mac_count_matches_network_size() {
        let (mut sim, _, calib) = deployed(4);
        let mut eps = BoxMullerGrng::new(11);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        assert_eq!(sim.stats().macs, 12 * 16 + 16 * 3);
    }

    #[test]
    fn eps_demand_matches_weight_and_bias_count() {
        let (mut sim, _, calib) = deployed(5);
        let mut eps = BoxMullerGrng::new(13);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        assert_eq!(
            sim.stats().eps_consumed,
            (12 * 16 + 16) as u64 + (16 * 3 + 3) as u64
        );
    }

    #[test]
    fn ifmem_reads_are_shared_across_pes() {
        // The Section 5.4.1 property: one IFMem read serves all PEs, so
        // reads = total iteration-cycles, not PEs x cycles.
        let (mut sim, _, calib) = deployed(6);
        let mut eps = BoxMullerGrng::new(15);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        let expected: u64 = Schedule::new(&small_cfg(), &[12, 16, 3])
            .layers()
            .iter()
            .map(|l| l.rounds * l.iterations)
            .sum();
        assert_eq!(sim.stats().ifmem_reads, expected);
    }

    #[test]
    fn batch_inference_matches_per_image_runs() {
        let (mut sim, _, calib) = deployed(8);
        let mut batch_sim = sim.clone();
        let mut eps_a = BoxMullerGrng::new(19);
        let mut eps_b = BoxMullerGrng::new(19);
        let batch = batch_sim.infer_batch(&calib, &mut eps_a);
        assert_eq!((batch.rows(), batch.cols()), (calib.rows(), 3));
        for r in 0..calib.rows() {
            let single = sim.infer(calib.row(r), &mut eps_b);
            assert_eq!(batch.row(r), &single[..], "image {r} diverged");
        }
        // Counters accumulate over the whole batch.
        assert_eq!(batch_sim.stats(), sim.stats());
    }

    #[test]
    fn parallel_hw_mc_is_bit_identical_across_thread_counts() {
        let (_, q, calib) = deployed(9);
        let eps = BoxMullerGrng::new(23);
        let reference = q.predict_proba_mc_parallel(&calib, 5, &eps, 1);
        for threads in [2usize, 4, 8] {
            let got = q.predict_proba_mc_parallel(&calib, 5, &eps, threads);
            assert_eq!(got.data(), reference.data(), "{threads} threads diverged");
        }
        let labels = vec![0usize; calib.rows()];
        let acc = q.evaluate_mc_parallel(&calib, &labels, 5, &eps, 2);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn per_request_costs_sum_to_batch_total() {
        let (mut sim, _, calib) = deployed(10);
        let mut eps = BoxMullerGrng::new(29);
        let before = sim.stats().cycles;
        let (out, costs) = sim.infer_batch_costed(&calib, &mut eps);
        assert_eq!(costs.len(), calib.rows());
        let total = sim.stats().cycles - before;
        let summed: u64 = costs.iter().map(|c| c.cycles).sum();
        assert_eq!(summed, total, "per-request cycles must sum to batch total");
        // Energy is linear in cycles, so the sum matches to rounding.
        let energy_total = sim.energy_nj(total);
        let energy_summed: f64 = costs.iter().map(|c| c.energy_nj).sum();
        assert!(
            (energy_summed - energy_total).abs() <= 1e-9 * energy_total.max(1.0),
            "energy sum {energy_summed} vs batch {energy_total}"
        );
        assert!(costs.iter().all(|c| c.cycles > 0 && c.energy_nj > 0.0));
        // Costed output is the batch output (same loop, same eps order).
        let mut plain = CycleAccelerator::new(small_cfg(), sim.network().clone());
        let reference = plain.infer_batch(&calib, &mut BoxMullerGrng::new(29));
        assert_eq!(out.data(), reference.data());
    }

    #[test]
    fn forked_inference_is_batch_composition_independent() {
        let (mut sim, _, calib) = deployed(11);
        let eps = BoxMullerGrng::new(31);
        let (alone, members, cost) = sim.infer_forked(calib.row(2), &eps);
        assert_eq!(members.len(), small_cfg().mc_samples);
        assert!(cost.cycles > 0 && cost.energy_nj > 0.0);
        // Serving the same row after others must not change its answer.
        let mut other = CycleAccelerator::new(small_cfg(), sim.network().clone());
        let _ = other.infer_forked(calib.row(0), &eps);
        let _ = other.infer_forked(calib.row(1), &eps);
        let (again, _, cost_again) = other.infer_forked(calib.row(2), &eps);
        let same = alone
            .iter()
            .zip(&again)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "forked inference depends on batch composition");
        assert_eq!(cost.cycles, cost_again.cycles);
    }

    #[test]
    fn energy_model_is_linear_in_cycles() {
        let (sim, _, _) = deployed(12);
        assert!(sim.power_w() > 0.0);
        assert_eq!(sim.energy_nj(0), 0.0);
        let one = sim.energy_nj(1);
        assert!((sim.energy_nj(1000) - 1000.0 * one).abs() < 1e-9 * 1000.0 * one);
    }

    #[test]
    fn reset_stats_clears() {
        let (mut sim, _, calib) = deployed(7);
        let mut eps = BoxMullerGrng::new(17);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        assert!(sim.stats().cycles > 0);
        sim.reset_stats();
        assert_eq!(sim.stats(), SimStats::default());
    }

    #[test]
    fn paper_config_throughput_close_to_table5() {
        let bnn = Bnn::new(BnnConfig::paper_mnist(), 21);
        let calib = Matrix::zeros(2, 784);
        let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
        let sim = CycleAccelerator::new(AcceleratorConfig::paper(), q);
        let tput = sim.images_per_second();
        assert!(
            (tput - 321_543.4).abs() / 321_543.4 < 0.15,
            "throughput {tput:.0}"
        );
    }
}
