//! Power model, calibrated to the paper's measurements.
//!
//! `P = P_static + f · (c_ALM·ALMs + c_BIT·bits + c_DSP·DSPs + c_LANE·lanes)`
//!
//! The five constants were fitted so the model reproduces the paper's four
//! published power points: Table 2's GRNG powers (528.69 mW RLF / 560.25 mW
//! BNNWallace at their respective Fmax) and Table 5's system powers implied
//! by throughput ÷ energy-efficiency (6.10 W RLF / 8.52 W BNNWallace).
//! Three points are reproduced exactly; the Wallace GRNG micro-benchmark
//! lands within 9% (see tests).

use vibnn_grng::GrngKind;

use crate::{AcceleratorConfig, ResourceModel};

/// Static (leakage + infrastructure) power in watts.
pub const P_STATIC_W: f64 = 0.35;
/// Dynamic power per ALM per MHz.
pub const C_ALM: f64 = 4.079409e-7;
/// Dynamic power per block-memory bit per MHz.
pub const C_BIT: f64 = 5.0e-11;
/// Dynamic power per DSP block per MHz.
pub const C_DSP: f64 = 2.0e-6;
/// Dynamic power per RLF lane per MHz (seed memory + LF-updater toggling).
pub const C_LANE_RLF: f64 = 7.801548e-6;
/// Dynamic power per BNNWallace lane per MHz (pool RAM toggling).
pub const C_LANE_WALLACE: f64 = 3.061820e-5;

/// Paper Table 2 GRNG power (mW): RLF at 212.95 MHz.
pub const PAPER_RLF_GRNG_MW: f64 = 528.69;
/// Paper Table 2 GRNG power (mW): BNNWallace at 117.63 MHz.
pub const PAPER_WALLACE_GRNG_MW: f64 = 560.25;
/// Paper Table 5 system power (W), RLF-based (321,543.4 img/s ÷ 52,694.8 img/J).
pub const PAPER_RLF_SYSTEM_W: f64 = 6.10;
/// Paper Table 5 system power (W), BNNWallace-based (321,543.4 ÷ 37,722.1).
pub const PAPER_WALLACE_SYSTEM_W: f64 = 8.52;

fn lane_coefficient(kind: GrngKind) -> f64 {
    match kind {
        GrngKind::Rlf => C_LANE_RLF,
        GrngKind::BnnWallace => C_LANE_WALLACE,
    }
}

/// Power (watts) of a standalone GRNG with `lanes` outputs at `f_mhz`.
pub fn grng_power_w(kind: GrngKind, lanes: usize, f_mhz: f64) -> f64 {
    let r = ResourceModel.grng(kind, lanes);
    P_STATIC_W
        + f_mhz
            * (C_ALM * r.alms as f64
                + C_BIT * r.block_bits as f64
                + lane_coefficient(kind) * lanes as f64)
}

/// Power (watts) of a full accelerator for a network with `total_weights`
/// weights and `max_layer_width` activations.
pub fn system_power_w(
    cfg: &AcceleratorConfig,
    total_weights: usize,
    max_layer_width: usize,
) -> f64 {
    let r = ResourceModel.system(cfg, total_weights, max_layer_width);
    // The system instantiates a full-rate weight generator: the lane term
    // scales with the sustained ε demand, modeled as macs_per_cycle lanes
    // of toggling generator datapath.
    let effective_lanes = cfg.macs_per_cycle() as f64;
    P_STATIC_W
        + cfg.clock_mhz
            * (C_ALM * r.alms as f64
                + C_BIT * r.block_bits as f64
                + C_DSP * r.dsps as f64
                + lane_coefficient(cfg.grng) * effective_lanes)
}

/// Energy efficiency in images per joule.
pub fn images_per_joule(images_per_second: f64, power_w: f64) -> f64 {
    images_per_second / power_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;

    const MNIST_WEIGHTS: usize = 784 * 200 + 200 * 200 + 200 * 10;

    #[test]
    fn rlf_grng_power_matches_table2() {
        let p = grng_power_w(GrngKind::Rlf, 64, timing::PAPER_RLF_FMAX_MHZ) * 1000.0;
        assert!(
            (p - PAPER_RLF_GRNG_MW).abs() / PAPER_RLF_GRNG_MW < 0.02,
            "model {p:.2} mW vs paper {PAPER_RLF_GRNG_MW}"
        );
    }

    #[test]
    fn wallace_grng_power_matches_table2_within_tolerance() {
        let p = grng_power_w(GrngKind::BnnWallace, 64, timing::PAPER_WALLACE_FMAX_MHZ) * 1000.0;
        assert!(
            (p - PAPER_WALLACE_GRNG_MW).abs() / PAPER_WALLACE_GRNG_MW < 0.10,
            "model {p:.2} mW vs paper {PAPER_WALLACE_GRNG_MW}"
        );
    }

    #[test]
    fn system_powers_match_table5() {
        let rlf = system_power_w(&AcceleratorConfig::paper(), MNIST_WEIGHTS, 784);
        let wal = system_power_w(&AcceleratorConfig::paper_wallace(), MNIST_WEIGHTS, 784);
        assert!(
            (rlf - PAPER_RLF_SYSTEM_W).abs() / PAPER_RLF_SYSTEM_W < 0.05,
            "rlf {rlf:.2} W"
        );
        assert!(
            (wal - PAPER_WALLACE_SYSTEM_W).abs() / PAPER_WALLACE_SYSTEM_W < 0.05,
            "wallace {wal:.2} W"
        );
        // The headline qualitative result: RLF is the more power-efficient
        // system despite the same throughput.
        assert!(rlf < wal);
    }

    #[test]
    fn power_scales_with_clock() {
        let slow = grng_power_w(GrngKind::Rlf, 64, 50.0);
        let fast = grng_power_w(GrngKind::Rlf, 64, 200.0);
        assert!(fast > slow);
        // Dynamic component is linear in f.
        let dyn_slow = slow - P_STATIC_W;
        let dyn_fast = fast - P_STATIC_W;
        assert!((dyn_fast / dyn_slow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_efficiency_shape() {
        // 283x more efficient than GPU, 458x than CPU (paper Section 6.4).
        let tput = 321_543.4;
        let rlf_eff = images_per_joule(
            tput,
            system_power_w(&AcceleratorConfig::paper(), MNIST_WEIGHTS, 784),
        );
        assert!(
            (rlf_eff - 52_694.8).abs() / 52_694.8 < 0.06,
            "rlf images/J {rlf_eff:.1}"
        );
    }
}
