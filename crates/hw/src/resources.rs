//! FPGA resource model (ALMs, registers, block memory, DSPs), calibrated
//! against the paper's Cyclone V synthesis results.
//!
//! The target device (5CGTFD9E5F35C7) provides 113,560 ALMs, 12,492,800
//! block-memory bits, 1,220 M10K RAM blocks, and 342 DSP blocks. The model
//! is linear in the architecture parameters with constants fitted so the
//! paper's two published design points (Table 2's 64-lane GRNGs and
//! Table 4's full networks) are reproduced within tolerance; tests at the
//! bottom assert this.

use vibnn_grng::GrngKind;

use crate::AcceleratorConfig;

/// Device capacity: ALMs.
pub const DEVICE_ALMS: u64 = 113_560;
/// Device capacity: block memory bits.
pub const DEVICE_BLOCK_BITS: u64 = 12_492_800;
/// Device capacity: M10K RAM blocks.
pub const DEVICE_RAM_BLOCKS: u64 = 1_220;
/// Device capacity: DSP blocks.
pub const DEVICE_DSPS: u64 = 342;

/// Paper Table 2: RLF-GRNG, 64 lanes.
pub const PAPER_RLF_GRNG_64: GrngResources = GrngResources {
    alms: 831,
    registers: 1780,
    block_bits: 16_384,
    ram_blocks: 3,
};

/// Paper Table 2: BNNWallace-GRNG, 64 lanes.
pub const PAPER_WALLACE_GRNG_64: GrngResources = GrngResources {
    alms: 401,
    registers: 1166,
    block_bits: 1_048_576,
    ram_blocks: 103,
};

/// Paper Table 4: full RLF-based network (ALMs, registers, block bits).
pub const PAPER_RLF_SYSTEM: (u64, u64, u64) = (98_006, 88_720, 4_572_928);
/// Paper Table 4: full BNNWallace-based network.
pub const PAPER_WALLACE_SYSTEM: (u64, u64, u64) = (91_126, 78_800, 4_880_128);

/// Resource usage of a GRNG instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrngResources {
    /// Adaptive logic modules.
    pub alms: u64,
    /// Dedicated registers.
    pub registers: u64,
    /// Block memory bits.
    pub block_bits: u64,
    /// M10K RAM blocks.
    pub ram_blocks: u64,
}

/// Resource usage of a full accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemResources {
    /// Adaptive logic modules.
    pub alms: u64,
    /// Dedicated registers.
    pub registers: u64,
    /// Block memory bits.
    pub block_bits: u64,
    /// DSP blocks.
    pub dsps: u64,
}

impl SystemResources {
    /// ALM utilization fraction of the paper's device.
    pub fn alm_utilization(&self) -> f64 {
        self.alms as f64 / DEVICE_ALMS as f64
    }

    /// Block-memory utilization fraction.
    pub fn block_bit_utilization(&self) -> f64 {
        self.block_bits as f64 / DEVICE_BLOCK_BITS as f64
    }

    /// DSP utilization fraction.
    pub fn dsp_utilization(&self) -> f64 {
        self.dsps as f64 / DEVICE_DSPS as f64
    }

    /// Whether the design fits the paper's device.
    pub fn fits_device(&self) -> bool {
        self.alms <= DEVICE_ALMS
            && self.block_bits <= DEVICE_BLOCK_BITS
            && self.dsps <= DEVICE_DSPS
    }
}

/// The analytic resource model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceModel;

// Calibration constants (fitted to Tables 2 and 4; see module docs).
const RLF_GRNG_BASE_ALMS: f64 = 120.0;
const RLF_GRNG_ALMS_PER_LANE: f64 = 11.1;
const RLF_GRNG_BASE_REGS: f64 = 100.0;
const RLF_GRNG_REGS_PER_LANE: f64 = 26.25;
const WAL_GRNG_BASE_ALMS: f64 = 50.0;
const WAL_GRNG_ALMS_PER_UNIT: f64 = 22.0;
const WAL_GRNG_BASE_REGS: f64 = 80.0;
const WAL_GRNG_REGS_PER_UNIT: f64 = 68.0;
/// BNNWallace per-unit block allocation observed in Table 2
/// (1,048,576 bits / 16 units).
const WAL_GRNG_BITS_PER_UNIT: u64 = 65_536;
const PE_ALMS: f64 = 715.0;
const PE_REGS: f64 = 630.0;
/// Controller, memory distributor, and interconnect fabric.
const CONTROL_ALMS: f64 = 2_500.0;
const CONTROL_REGS: f64 = 2_000.0;
/// Batch/stream buffers and controller tables.
const CONTROL_BUFFER_BITS: u64 = 1_000_000;
/// Multipliers packed per DSP block for 8-bit operands.
const MULTS_PER_DSP: u64 = 3;

impl ResourceModel {
    /// Resources of a standalone GRNG with `lanes` parallel outputs
    /// (Table 2's benchmark configuration is 64).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn grng(&self, kind: GrngKind, lanes: usize) -> GrngResources {
        assert!(lanes > 0, "need at least one lane");
        let lanes_f = lanes as f64;
        match kind {
            GrngKind::Rlf => {
                // SeMem: 255 seed cells per lane, logically allocated as
                // 256-deep words of `lanes` bits, banked 3 ways.
                let block_bits = 256 * lanes as u64;
                let bank_bits = (85 * lanes as u64).div_ceil(1);
                let ram_blocks = 3 * bank_bits.div_ceil(10_240).max(1);
                GrngResources {
                    alms: (RLF_GRNG_BASE_ALMS + RLF_GRNG_ALMS_PER_LANE * lanes_f) as u64,
                    registers: (RLF_GRNG_BASE_REGS + RLF_GRNG_REGS_PER_LANE * lanes_f) as u64,
                    block_bits,
                    ram_blocks,
                }
            }
            GrngKind::BnnWallace => {
                // Four outputs per Wallace unit.
                let units = lanes.div_ceil(4) as u64;
                let units_f = units as f64;
                GrngResources {
                    alms: (WAL_GRNG_BASE_ALMS + WAL_GRNG_ALMS_PER_UNIT * units_f) as u64,
                    registers: (WAL_GRNG_BASE_REGS + WAL_GRNG_REGS_PER_UNIT * units_f) as u64,
                    block_bits: WAL_GRNG_BITS_PER_UNIT * units,
                    ram_blocks: (103 * units).div_ceil(16),
                }
            }
        }
    }

    /// Resources of a full accelerator running a network with
    /// `total_weights` weights and `max_layer_width` activations.
    pub fn system(
        &self,
        cfg: &AcceleratorConfig,
        total_weights: usize,
        max_layer_width: usize,
    ) -> SystemResources {
        let m = cfg.total_pes() as f64;
        let grng = self.grng(cfg.grng, cfg.grng_lanes);
        let alms = (PE_ALMS * m + CONTROL_ALMS) as u64 + grng.alms;
        let registers = (PE_REGS * m + CONTROL_REGS) as u64 + grng.registers;
        // Weight parameter memory: µ and σ for every weight, B bits each.
        let wp_bits = 2 * total_weights as u64 * u64::from(cfg.bit_len);
        // Two IFMems sized for the widest activation vector.
        let if_bits = 2 * max_layer_width as u64 * u64::from(cfg.bit_len);
        let block_bits = wp_bits + if_bits + grng.block_bits + CONTROL_BUFFER_BITS;
        let dsps = (cfg.macs_per_cycle() as u64)
            .div_ceil(MULTS_PER_DSP)
            .min(DEVICE_DSPS);
        SystemResources {
            alms,
            registers,
            block_bits,
            dsps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(model: u64, paper: u64, tol: f64) -> bool {
        (model as f64 - paper as f64).abs() / paper as f64 <= tol
    }

    #[test]
    fn rlf_grng_64_matches_table2() {
        let r = ResourceModel.grng(GrngKind::Rlf, 64);
        assert!(within(r.alms, PAPER_RLF_GRNG_64.alms, 0.05), "{r:?}");
        assert!(within(r.registers, PAPER_RLF_GRNG_64.registers, 0.05));
        assert_eq!(r.block_bits, PAPER_RLF_GRNG_64.block_bits);
        assert_eq!(r.ram_blocks, PAPER_RLF_GRNG_64.ram_blocks);
    }

    #[test]
    fn wallace_grng_64_matches_table2() {
        let r = ResourceModel.grng(GrngKind::BnnWallace, 64);
        assert!(within(r.alms, PAPER_WALLACE_GRNG_64.alms, 0.05), "{r:?}");
        assert!(within(r.registers, PAPER_WALLACE_GRNG_64.registers, 0.05));
        assert_eq!(r.block_bits, PAPER_WALLACE_GRNG_64.block_bits);
        assert_eq!(r.ram_blocks, PAPER_WALLACE_GRNG_64.ram_blocks);
    }

    #[test]
    fn rlf_uses_less_memory_wallace_fewer_alms() {
        // The Table 3 qualitative comparison.
        let rlf = ResourceModel.grng(GrngKind::Rlf, 64);
        let wal = ResourceModel.grng(GrngKind::BnnWallace, 64);
        assert!(rlf.block_bits < wal.block_bits / 10);
        assert!(wal.alms < rlf.alms);
    }

    #[test]
    fn full_systems_match_table4() {
        let weights = 784 * 200 + 200 * 200 + 200 * 10;
        let rlf = ResourceModel.system(&AcceleratorConfig::paper(), weights, 784);
        let wal = ResourceModel.system(&AcceleratorConfig::paper_wallace(), weights, 784);
        assert!(
            within(rlf.alms, PAPER_RLF_SYSTEM.0, 0.15),
            "rlf alms {} vs {}",
            rlf.alms,
            PAPER_RLF_SYSTEM.0
        );
        assert!(within(rlf.registers, PAPER_RLF_SYSTEM.1, 0.15));
        assert!(within(rlf.block_bits, PAPER_RLF_SYSTEM.2, 0.15));
        assert!(within(wal.alms, PAPER_WALLACE_SYSTEM.0, 0.15));
        assert!(within(wal.registers, PAPER_WALLACE_SYSTEM.1, 0.15));
        assert!(within(wal.block_bits, PAPER_WALLACE_SYSTEM.2, 0.15));
        assert_eq!(rlf.dsps, DEVICE_DSPS); // Table 4: 100% DSP usage.
        assert!(rlf.fits_device());
        assert!(wal.fits_device());
    }

    #[test]
    fn utilization_fractions() {
        let weights = 784 * 200 + 200 * 200 + 200 * 10;
        let r = ResourceModel.system(&AcceleratorConfig::paper(), weights, 784);
        // Table 4 reports 86.3% ALM and 36.6% block-bit utilization.
        assert!((r.alm_utilization() - 0.863).abs() < 0.1);
        assert!((r.block_bit_utilization() - 0.366).abs() < 0.1);
        assert!((r.dsp_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resources_scale_with_lanes() {
        let small = ResourceModel.grng(GrngKind::Rlf, 16);
        let big = ResourceModel.grng(GrngKind::Rlf, 256);
        assert!(big.alms > small.alms * 8);
        assert!(big.block_bits == 16 * small.block_bits);
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let mut cfg = AcceleratorConfig::paper();
        cfg.pe_sets = 64;
        cfg.max_word_size = 4096;
        let r = ResourceModel.system(&cfg, 200_000, 784);
        assert!(!r.fits_device(), "{r:?}");
    }
}
