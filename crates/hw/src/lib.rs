//! The VIBNN accelerator: cycle-level simulator plus FPGA resource, power,
//! and timing models.
//!
//! The paper implements the accelerator on an Altera Cyclone V FPGA
//! (5CGTFD9E5F35C7). This crate substitutes that hardware with:
//!
//! - [`AcceleratorConfig`] — the architecture parameters of Section 5.4
//!   (T PE-sets × S PEs × N inputs, bit length B) with the bandwidth
//!   constraint checks of equations 14/15.
//! - [`QuantizedBnn`] — the *functional* fixed-point datapath: exactly the
//!   arithmetic the PEs and weight generator perform (quantized µ/σ,
//!   `w = µ + σ·ε`, wide-accumulator MACs, bias, ReLU), vectorized for
//!   fast accuracy evaluation (Tables 6/7, Figure 18).
//! - [`CycleAccelerator`] — a component-level, cycle-ticked model of the
//!   PE pipeline, memories, and weight generator that produces outputs
//!   bit-identical to [`QuantizedBnn`] while counting cycles and memory
//!   traffic.
//! - [`Schedule`] — the closed-form cycle model the simulator is verified
//!   against.
//! - [`ResourceModel`] / [`power`] / [`timing`] — analytic
//!   ALM/register/BRAM/DSP, power, and Fmax models calibrated against the
//!   paper's published synthesis results (Tables 2/4/5); calibration
//!   constants carry `PAPER_*` names and tests assert the model reproduces
//!   the paper's numbers within tolerance.
//! - [`baselines`] — CPU/GPU throughput and energy anchors for Table 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod config;
mod controller;
pub mod power;
mod quantized;
mod resources;
mod sim;
pub mod timing;

pub use config::{AcceleratorConfig, ConfigError};
pub use controller::{LayerCycles, Schedule};
pub use quantized::{QuantizationSpec, QuantizedBnn};
pub use resources::{GrngResources, DEVICE_RAM_BLOCKS, ResourceModel, SystemResources, PAPER_RLF_GRNG_64, PAPER_RLF_SYSTEM, PAPER_WALLACE_GRNG_64, PAPER_WALLACE_SYSTEM};
pub use sim::{CycleAccelerator, RequestCost, SimStats};
