//! The global controller's schedule: a closed-form cycle model for
//! time-multiplexed layer execution (verified against the ticking
//! simulator in `sim.rs`).

use crate::AcceleratorConfig;

/// Pipeline fill depth: multiply, adder tree, accumulate/bias, ReLU
/// (Figure 14's PE pipeline plus the weight-generator register tier).
pub const PIPELINE_FILL: u64 = 4;

/// Controller overhead per layer: IFMem ping-pong swap, address reset,
/// command distribution.
pub const LAYER_CONTROL: u64 = 10;

/// Cycle breakdown for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCycles {
    /// Neuron rounds: `ceil(out_dim / M)`.
    pub rounds: u64,
    /// Accumulation iterations per round: `ceil(in_dim / N)`.
    pub iterations: u64,
    /// Total cycles for the layer including pipeline fill, write-back
    /// drain, and control overhead.
    pub total: u64,
}

/// The closed-form schedule for a feed-forward network on the accelerator.
///
/// # Example
///
/// ```
/// use vibnn_hw::{AcceleratorConfig, Schedule};
/// let sched = Schedule::new(&AcceleratorConfig::paper(), &[784, 200, 200, 10]);
/// let cycles = sched.cycles_per_image();
/// assert!(cycles > 200 && cycles < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    layers: Vec<LayerCycles>,
    mc_samples: u64,
    clock_mhz: f64,
    macs_per_cycle: u64,
    total_macs: u64,
}

impl Schedule {
    /// Builds the schedule for `layer_sizes` (input, hidden…, output).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or fewer than two sizes are
    /// given.
    pub fn new(cfg: &AcceleratorConfig, layer_sizes: &[usize]) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        assert!(layer_sizes.len() >= 2, "need at least two layer sizes");
        let m = cfg.total_pes() as u64;
        let n = cfg.pe_inputs as u64;
        let t = cfg.pe_sets as u64;
        let mut layers = Vec::new();
        let mut total_macs = 0u64;
        for w in layer_sizes.windows(2) {
            let (d_in, d_out) = (w[0] as u64, w[1] as u64);
            let rounds = d_out.div_ceil(m);
            let iterations = d_in.div_ceil(n);
            let total = rounds * iterations + PIPELINE_FILL + t + LAYER_CONTROL;
            layers.push(LayerCycles {
                rounds,
                iterations,
                total,
            });
            total_macs += d_in * d_out;
        }
        Self {
            layers,
            mc_samples: cfg.mc_samples as u64,
            clock_mhz: cfg.clock_mhz,
            macs_per_cycle: cfg.macs_per_cycle() as u64,
            total_macs,
        }
    }

    /// Per-layer breakdown.
    pub fn layers(&self) -> &[LayerCycles] {
        &self.layers
    }

    /// Cycles for one Monte Carlo sample of one image.
    pub fn cycles_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.total).sum()
    }

    /// Cycles for one image (all MC samples).
    pub fn cycles_per_image(&self) -> u64 {
        self.cycles_per_sample() * self.mc_samples
    }

    /// Ideal lower bound: total MACs / array MAC throughput.
    pub fn ideal_cycles_per_sample(&self) -> u64 {
        self.total_macs.div_ceil(self.macs_per_cycle)
    }

    /// PE-array utilization: ideal cycles / actual cycles.
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles_per_sample() as f64 / self.cycles_per_sample() as f64
    }

    /// Throughput in images per second at the configured clock.
    pub fn images_per_second(&self) -> f64 {
        self.clock_mhz * 1.0e6 / self.cycles_per_image() as f64
    }

    /// MAC operations per weight sample (also the ε demand per sample).
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sched() -> Schedule {
        Schedule::new(&AcceleratorConfig::paper(), &[784, 200, 200, 10])
    }

    #[test]
    fn paper_network_layer_breakdown() {
        let s = paper_sched();
        let l = s.layers();
        // 784 -> 200: ceil(200/128)=2 rounds x ceil(784/8)=98 iterations.
        assert_eq!(l[0].rounds, 2);
        assert_eq!(l[0].iterations, 98);
        // 200 -> 200: 2 x 25.
        assert_eq!(l[1].rounds, 2);
        assert_eq!(l[1].iterations, 25);
        // 200 -> 10: 1 x 25.
        assert_eq!(l[2].rounds, 1);
        assert_eq!(l[2].iterations, 25);
    }

    #[test]
    fn paper_throughput_matches_table5_shape() {
        // Table 5 reports 321,543.4 images/s; the model should land within
        // ~15% of that at the common clock.
        let s = paper_sched();
        let tput = s.images_per_second();
        let paper = 321_543.4;
        assert!(
            (tput - paper).abs() / paper < 0.15,
            "model {tput:.1} vs paper {paper}"
        );
    }

    #[test]
    fn mc_samples_scale_cycles_linearly() {
        let mut cfg = AcceleratorConfig::paper();
        cfg.mc_samples = 3;
        let s3 = Schedule::new(&cfg, &[784, 200, 200, 10]);
        let s1 = paper_sched();
        assert_eq!(s3.cycles_per_image(), 3 * s1.cycles_per_image());
    }

    #[test]
    fn utilization_is_sane() {
        let s = paper_sched();
        let u = s.utilization();
        assert!(u > 0.4 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn cycles_monotone_in_layer_width() {
        let cfg = AcceleratorConfig::paper();
        let small = Schedule::new(&cfg, &[256, 128, 10]).cycles_per_sample();
        let big = Schedule::new(&cfg, &[512, 256, 10]).cycles_per_sample();
        assert!(big > small);
    }

    #[test]
    fn more_pes_reduce_cycles() {
        let base = paper_sched().cycles_per_sample();
        let mut cfg = AcceleratorConfig::paper();
        cfg.pe_sets = 32;
        let wide = Schedule::new(&cfg, &[784, 200, 200, 10]).cycles_per_sample();
        assert!(wide < base, "{wide} !< {base}");
    }

    #[test]
    fn ideal_bound_is_lower() {
        let s = paper_sched();
        assert!(s.ideal_cycles_per_sample() <= s.cycles_per_sample());
        // 198,800 MACs / 1024 per cycle = 195 (rounded up).
        assert_eq!(s.ideal_cycles_per_sample(), 195);
        assert_eq!(s.total_macs(), 784 * 200 + 200 * 200 + 200 * 10);
    }

    #[test]
    #[should_panic(expected = "at least two layer sizes")]
    fn single_size_panics() {
        let _ = Schedule::new(&AcceleratorConfig::paper(), &[784]);
    }
}
