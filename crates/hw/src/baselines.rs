//! CPU/GPU baselines for the Table 5 comparison.
//!
//! The paper benchmarks an Intel i7-6700K and an Nvidia GTX 1070 running
//! the software BNN. Neither device is available here, so this module
//! provides (a) the paper's published numbers as anchors and (b) a native
//! measurement of the software BNN on *this* host, with a documented TDP
//! assumption for the energy figure.

use std::time::Instant;

use vibnn_bnn::Bnn;
use vibnn_grng::GaussianSource;
use vibnn_nn::Matrix;

/// A throughput/energy point for Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Configuration label.
    pub name: String,
    /// Images per second.
    pub images_per_second: f64,
    /// Images per joule.
    pub images_per_joule: f64,
}

/// Paper Table 5: Intel i7-6700K software BNN.
pub fn paper_cpu() -> BaselinePoint {
    BaselinePoint {
        name: "Intel i7-6700k (paper)".to_owned(),
        images_per_second: 10_478.1,
        images_per_joule: 115.1,
    }
}

/// Paper Table 5: Nvidia GTX 1070 software BNN.
pub fn paper_gpu() -> BaselinePoint {
    BaselinePoint {
        name: "Nvidia GTX1070 (paper)".to_owned(),
        images_per_second: 27_988.1,
        images_per_joule: 186.6,
    }
}

/// Assumed package power (W) for the native host measurement's energy
/// figure (i7-6700K TDP class; documented substitution — no RAPL access).
pub const ASSUMED_HOST_POWER_W: f64 = 91.0;

/// Measures software BNN MC-inference throughput on this host: runs
/// `images` single-image inferences with `samples` MC samples each and
/// returns images/s plus an images/J estimate under
/// [`ASSUMED_HOST_POWER_W`].
///
/// # Panics
///
/// Panics if `images == 0` or `x` has fewer rows than `images`.
pub fn measure_native_cpu(
    bnn: &Bnn,
    x: &Matrix,
    images: usize,
    samples: usize,
    eps_src: &mut impl GaussianSource,
) -> BaselinePoint {
    assert!(images > 0, "need at least one image");
    assert!(x.rows() >= images, "not enough rows for requested images");
    let start = Instant::now();
    for r in 0..images {
        let row = x.rows_slice(r, r + 1);
        let _ = bnn.predict_proba_mc(&row, samples, eps_src);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let ips = images as f64 / secs;
    BaselinePoint {
        name: "native host CPU (measured)".to_owned(),
        images_per_second: ips,
        images_per_joule: ips / ASSUMED_HOST_POWER_W,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_bnn::BnnConfig;
    use vibnn_grng::BoxMullerGrng;

    #[test]
    fn paper_anchors_have_expected_ordering() {
        let cpu = paper_cpu();
        let gpu = paper_gpu();
        assert!(gpu.images_per_second > cpu.images_per_second);
        assert!(gpu.images_per_joule > cpu.images_per_joule);
    }

    #[test]
    fn native_measurement_runs() {
        let bnn = Bnn::new(BnnConfig::new(&[16, 8, 2]), 1);
        let x = Matrix::zeros(4, 16);
        let mut eps = BoxMullerGrng::new(2);
        let p = measure_native_cpu(&bnn, &x, 4, 2, &mut eps);
        assert!(p.images_per_second > 0.0);
        assert!(p.images_per_joule > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn zero_images_panics() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        let x = Matrix::zeros(1, 4);
        let mut eps = BoxMullerGrng::new(1);
        let _ = measure_native_cpu(&bnn, &x, 0, 1, &mut eps);
    }
}
