//! Clock-frequency model, calibrated to the paper's synthesis results.

use vibnn_grng::GrngKind;

/// RLF-GRNG Fmax from Table 2 (MHz).
pub const PAPER_RLF_FMAX_MHZ: f64 = 212.95;

/// BNNWallace-GRNG Fmax from Table 2 (MHz).
pub const PAPER_WALLACE_FMAX_MHZ: f64 = 117.63;

/// Estimated Fmax of the PE datapath on the Cyclone V fabric (MHz). The
/// three-stage PE pipeline of Figure 14 comfortably exceeds the Wallace
/// GRNG's critical path.
pub const PE_FMAX_MHZ: f64 = 150.0;

/// Fmax of a GRNG design (MHz).
///
/// The RLF design's shallow tap parallel counter lets it clock much higher
/// than the Wallace unit's 4-input adder + subtractor chain (paper
/// Section 6.1).
pub fn grng_fmax_mhz(kind: GrngKind) -> f64 {
    match kind {
        GrngKind::Rlf => PAPER_RLF_FMAX_MHZ,
        GrngKind::BnnWallace => PAPER_WALLACE_FMAX_MHZ,
    }
}

/// Achievable system clock for an accelerator using `kind`: limited by the
/// slowest of the GRNG and the PE datapath.
pub fn system_fmax_mhz(kind: GrngKind) -> f64 {
    grng_fmax_mhz(kind).min(PE_FMAX_MHZ)
}

/// The common clock both paper variants are benchmarked at (Table 5 lists
/// identical throughput for both, implying a shared clock bounded by the
/// Wallace GRNG).
pub fn common_clock_mhz() -> f64 {
    PAPER_WALLACE_FMAX_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rlf_clocks_higher_than_wallace() {
        assert!(grng_fmax_mhz(GrngKind::Rlf) > grng_fmax_mhz(GrngKind::BnnWallace));
    }

    #[test]
    fn system_clock_is_bounded_by_components() {
        assert_eq!(system_fmax_mhz(GrngKind::BnnWallace), PAPER_WALLACE_FMAX_MHZ);
        assert_eq!(system_fmax_mhz(GrngKind::Rlf), PE_FMAX_MHZ);
    }

    #[test]
    fn common_clock_is_the_slower_grng() {
        assert_eq!(common_clock_mhz(), 117.63);
    }
}
