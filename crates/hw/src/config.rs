//! Accelerator configuration (paper Section 5.4) and validation.

use vibnn_grng::GrngKind;

/// Configuration error returned by [`AcceleratorConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `S != N` (equation 14c/15c requires square PE sets).
    PeSetNotSquare {
        /// PEs per set.
        s: usize,
        /// Inputs per PE.
        n: usize,
    },
    /// The per-PE-set weight word exceeds the maximum word size
    /// (equation 15b: `B × N × S <= MaxWS`).
    WordTooWide {
        /// Required word bits.
        required: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A dimension is zero.
    ZeroDimension(&'static str),
    /// Bit length outside `2..=32`.
    BadBitLength(u32),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::PeSetNotSquare { s, n } => {
                write!(f, "PE sets must be square: S={s} != N={n} (eq. 15c)")
            }
            ConfigError::WordTooWide { required, max } => {
                write!(f, "WPMem word {required} bits exceeds MaxWS {max} (eq. 15b)")
            }
            ConfigError::ZeroDimension(which) => write!(f, "{which} must be positive"),
            ConfigError::BadBitLength(b) => write!(f, "bit length {b} outside 2..=32"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// VIBNN accelerator architecture parameters.
///
/// # Example
///
/// ```
/// use vibnn_hw::AcceleratorConfig;
/// let cfg = AcceleratorConfig::paper();
/// assert_eq!(cfg.total_pes(), 128);
/// cfg.validate().expect("the paper's configuration is valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of PE sets (`T`).
    pub pe_sets: usize,
    /// PEs per set (`S`; must equal `pe_inputs`).
    pub pes_per_set: usize,
    /// Inputs per PE (`N`).
    pub pe_inputs: usize,
    /// Operand bit length (`B`; the paper settles on 8).
    pub bit_len: u32,
    /// Maximum allowable on-chip memory word size in bits (`MaxWS`).
    pub max_word_size: usize,
    /// Which GRNG design feeds the weight generator.
    pub grng: GrngKind,
    /// Parallel GRNG lanes in the weight generator (the paper's Table 2
    /// benchmarks 64).
    pub grng_lanes: usize,
    /// System clock in MHz. The paper runs both variants at a common clock
    /// bounded by the slower (Wallace) GRNG Fmax.
    pub clock_mhz: f64,
    /// Monte Carlo samples per inference (equation 6's N).
    pub mc_samples: usize,
}

impl AcceleratorConfig {
    /// The paper's deployed configuration: 16 PE-sets of eight 8-input
    /// PEs, 8-bit operands, 64-lane GRNG, common 117.63 MHz clock.
    pub fn paper() -> Self {
        Self {
            pe_sets: 16,
            pes_per_set: 8,
            pe_inputs: 8,
            bit_len: 8,
            max_word_size: 1024,
            grng: GrngKind::Rlf,
            grng_lanes: 64,
            clock_mhz: timing_default_clock(),
            mc_samples: 1,
        }
    }

    /// Same architecture with the BNNWallace GRNG.
    pub fn paper_wallace() -> Self {
        Self {
            grng: GrngKind::BnnWallace,
            ..Self::paper()
        }
    }

    /// Total PE count `M = T × S` (equation 15d).
    pub fn total_pes(&self) -> usize {
        self.pe_sets * self.pes_per_set
    }

    /// MACs the array performs per cycle (`M × N`).
    pub fn macs_per_cycle(&self) -> usize {
        self.total_pes() * self.pe_inputs
    }

    /// The WPMem word width `B × N × S` bits (equation 15b's left side).
    pub fn wpmem_word_bits(&self) -> usize {
        self.bit_len as usize * self.pe_inputs * self.pes_per_set
    }

    /// The IFMem word width `B × N` bits.
    pub fn ifmem_word_bits(&self) -> usize {
        self.bit_len as usize * self.pe_inputs
    }

    /// Validates the architectural constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see [`ConfigError`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pe_sets == 0 {
            return Err(ConfigError::ZeroDimension("pe_sets"));
        }
        if self.pes_per_set == 0 {
            return Err(ConfigError::ZeroDimension("pes_per_set"));
        }
        if self.pe_inputs == 0 {
            return Err(ConfigError::ZeroDimension("pe_inputs"));
        }
        if self.grng_lanes == 0 {
            return Err(ConfigError::ZeroDimension("grng_lanes"));
        }
        if self.mc_samples == 0 {
            return Err(ConfigError::ZeroDimension("mc_samples"));
        }
        if !(2..=32).contains(&self.bit_len) {
            return Err(ConfigError::BadBitLength(self.bit_len));
        }
        if self.pes_per_set != self.pe_inputs {
            return Err(ConfigError::PeSetNotSquare {
                s: self.pes_per_set,
                n: self.pe_inputs,
            });
        }
        let word = self.wpmem_word_bits();
        if word > self.max_word_size {
            return Err(ConfigError::WordTooWide {
                required: word,
                max: self.max_word_size,
            });
        }
        Ok(())
    }

    /// Write-back feasibility for a network whose smallest layer input is
    /// `min_in`: the memory distributor must drain `T` PE-set words within
    /// one accumulation round of `ceil(min_in / N)` cycles.
    ///
    /// (The paper's equation 14a prints this as `T × S < ceil(MinIn/N)`,
    /// which its own 128-PE configuration would violate for MNIST; the
    /// drain requirement is per PE-set *word*, hence `T`, not `T × S` —
    /// see DESIGN.md.)
    pub fn writeback_ok(&self, min_in: usize) -> bool {
        self.pe_sets <= min_in.div_ceil(self.pe_inputs)
    }
}

/// The common system clock (MHz) used for both variants in the paper's
/// throughput table: bounded by the BNNWallace GRNG Fmax.
fn timing_default_clock() -> f64 {
    crate::timing::PAPER_WALLACE_FMAX_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = AcceleratorConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_pes(), 128);
        assert_eq!(cfg.macs_per_cycle(), 1024);
        assert_eq!(cfg.wpmem_word_bits(), 8 * 8 * 8);
        assert_eq!(cfg.ifmem_word_bits(), 64);
    }

    #[test]
    fn paper_writeback_holds_for_mnist() {
        let cfg = AcceleratorConfig::paper();
        // MinIn for 784-200-200-10 is 200 (hidden layers): ceil(200/8)=25
        // rounds >= 16 PE-set words.
        assert!(cfg.writeback_ok(200));
        assert!(cfg.writeback_ok(784));
        // A tiny layer would violate it.
        assert!(!cfg.writeback_ok(64));
    }

    #[test]
    fn non_square_pe_set_rejected() {
        let cfg = AcceleratorConfig {
            pes_per_set: 4,
            ..AcceleratorConfig::paper()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::PeSetNotSquare { s: 4, n: 8 })
        );
    }

    #[test]
    fn wide_word_rejected() {
        let cfg = AcceleratorConfig {
            pes_per_set: 16,
            pe_inputs: 16,
            max_word_size: 1024,
            ..AcceleratorConfig::paper()
        };
        // 8 * 16 * 16 = 2048 > 1024.
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::WordTooWide { required: 2048, .. })
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        let cfg = AcceleratorConfig {
            mc_samples: 0,
            ..AcceleratorConfig::paper()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDimension("mc_samples")));
    }

    #[test]
    fn bad_bit_length_rejected() {
        let cfg = AcceleratorConfig {
            bit_len: 1,
            ..AcceleratorConfig::paper()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::BadBitLength(1)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::WordTooWide {
            required: 2048,
            max: 1024,
        };
        assert!(e.to_string().contains("2048"));
    }
}
