//! Linear-feedback tap table (after Ward & Molteno / Xilinx XAPP 052).
//!
//! Taps are given in the paper's circular-LFSR convention (Section 4.1.1):
//! for a width-`n` register with head `R(1)`, every cycle performs
//! `R(t) <- R(t+1) XOR R(1)` for each tap `t` and then shifts. This is
//! equivalent to the linear recurrence `s_j = s_{j-n} ^ s_{j-t1} ^ ...`,
//! i.e. the characteristic polynomial `x^n + x^t1 + ... + 1` must be
//! primitive for a maximal `2^n - 1` period.
//!
//! The paper's two featured widths are included exactly as published:
//! width 8 with taps `{4, 5, 6}` and width 255 with taps `{250, 252, 253}`.

/// A (width, taps) entry: `taps` are the circular-convention tap positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapEntry {
    /// Register width in bits.
    pub width: usize,
    /// Tap positions (`1..width`), excluding the implicit `x^n` and `1`.
    pub taps: &'static [usize],
}

/// Known maximal-length tap sets.
///
/// Widths up to 16 are verified exhaustively by tests in this module
/// (period exactly `2^n - 1`); larger widths carry a bounded no-short-cycle
/// sanity check.
pub const TAP_TABLE: &[TapEntry] = &[
    TapEntry { width: 3, taps: &[2] },
    TapEntry { width: 4, taps: &[3] },
    TapEntry { width: 5, taps: &[3] },
    TapEntry { width: 6, taps: &[5] },
    TapEntry { width: 7, taps: &[6] },
    TapEntry { width: 8, taps: &[4, 5, 6] },
    TapEntry { width: 9, taps: &[5] },
    TapEntry { width: 10, taps: &[7] },
    TapEntry { width: 11, taps: &[9] },
    TapEntry { width: 12, taps: &[1, 4, 6] },
    TapEntry { width: 13, taps: &[1, 3, 4] },
    TapEntry { width: 14, taps: &[1, 3, 5] },
    TapEntry { width: 15, taps: &[14] },
    TapEntry { width: 16, taps: &[4, 13, 15] },
    TapEntry { width: 17, taps: &[14] },
    TapEntry { width: 18, taps: &[11] },
    TapEntry { width: 19, taps: &[1, 2, 6] },
    TapEntry { width: 20, taps: &[17] },
    TapEntry { width: 21, taps: &[19] },
    TapEntry { width: 22, taps: &[21] },
    TapEntry { width: 23, taps: &[18] },
    TapEntry { width: 24, taps: &[17, 22, 23] },
    TapEntry { width: 25, taps: &[22] },
    TapEntry { width: 26, taps: &[1, 2, 6] },
    TapEntry { width: 27, taps: &[1, 2, 5] },
    TapEntry { width: 28, taps: &[25] },
    TapEntry { width: 29, taps: &[27] },
    TapEntry { width: 30, taps: &[1, 4, 6] },
    TapEntry { width: 31, taps: &[28] },
    TapEntry { width: 32, taps: &[1, 2, 22] },
    TapEntry { width: 33, taps: &[20] },
    TapEntry { width: 36, taps: &[25] },
    TapEntry { width: 40, taps: &[19, 21, 38] },
    TapEntry { width: 48, taps: &[20, 21, 47] },
    TapEntry { width: 63, taps: &[62] },
    TapEntry { width: 64, taps: &[60, 61, 63] },
    TapEntry { width: 96, taps: &[47, 49, 94] },
    TapEntry { width: 127, taps: &[126] },
    TapEntry { width: 128, taps: &[99, 101, 126] },
    // The paper's 255-bit RLF-GRNG tap set (Section 4.1.2).
    TapEntry { width: 255, taps: &[250, 252, 253] },
    TapEntry { width: 256, taps: &[246, 251, 254] },
];

/// Looks up the tap set for `width`, if one is tabulated.
///
/// # Example
///
/// ```
/// assert_eq!(vibnn_rng::taps::taps_for(8), Some(&[4, 5, 6][..]));
/// assert_eq!(vibnn_rng::taps::taps_for(7000), None);
/// ```
pub fn taps_for(width: usize) -> Option<&'static [usize]> {
    TAP_TABLE
        .iter()
        .find(|e| e.width == width)
        .map(|e| e.taps)
}

/// The paper's RLF-GRNG seed width: 255 bits for an 8-bit Gaussian output.
pub const PAPER_RLF_WIDTH: usize = 255;

/// The paper's RLF-GRNG taps for the 255-bit seed.
pub const PAPER_RLF_TAPS: [usize; 3] = [250, 252, 253];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircularLfsr, SplitMix64};

    #[test]
    fn paper_entries_present() {
        assert_eq!(taps_for(8), Some(&[4usize, 5, 6][..]));
        assert_eq!(taps_for(PAPER_RLF_WIDTH), Some(&PAPER_RLF_TAPS[..]));
    }

    #[test]
    fn taps_are_sorted_in_range_and_unique() {
        for e in TAP_TABLE {
            assert!(!e.taps.is_empty(), "width {}", e.width);
            let mut prev = 0;
            for &t in e.taps {
                assert!(t > prev, "width {} taps not sorted/unique", e.width);
                assert!(t < e.width, "width {} tap {} out of range", e.width, t);
                prev = t;
            }
        }
    }

    /// Exhaustively verify maximal period for every tabulated width <= 16.
    #[test]
    fn small_widths_have_maximal_period() {
        for e in TAP_TABLE.iter().filter(|e| e.width <= 16) {
            let mut src = SplitMix64::new(0xABCD + e.width as u64);
            let mut lfsr = CircularLfsr::random(e.width, e.taps, &mut src);
            let start = lfsr.state().clone();
            let max = (1u64 << e.width) - 1;
            let mut period = 0u64;
            loop {
                lfsr.step();
                period += 1;
                if lfsr.state() == &start {
                    break;
                }
                assert!(
                    period <= max,
                    "width {} exceeded maximal period",
                    e.width
                );
            }
            assert_eq!(period, max, "width {} period {period} != {max}", e.width);
        }
    }

    /// Larger widths: no cycle shorter than a large bound.
    #[test]
    fn larger_widths_have_no_short_cycle() {
        for &w in &[24usize, 32, 64, 127, 255] {
            let taps = taps_for(w).unwrap();
            let mut src = SplitMix64::new(w as u64);
            let mut lfsr = CircularLfsr::random(w, taps, &mut src);
            let start = lfsr.state().clone();
            for step in 1..=20_000u32 {
                lfsr.step();
                assert!(lfsr.state() != &start, "width {w} cycled at step {step}");
            }
        }
    }
}
