//! The 3-block two-port RAM banking scheme of paper Figure 6.
//!
//! The combined RLF update (equations 12a–12e) touches seven cells per
//! cycle, but the buffer register of Figure 5 caches the tap window so the
//! actual RAM traffic is only **3 reads** (`x(h)`, `x(h+250)`, `x(h+251)`)
//! and **2 writes** (`x(h+253)`, `x(h+254)`). Banking the 255 seed cells by
//! `address mod 3` guarantees every bank sees at most two accesses per
//! cycle, which a two-port RAM can serve.
//!
//! [`BankedRlf`] wraps [`RlfLogic`], reproduces that access pattern every
//! cycle, verifies the two-port constraint, and accumulates per-bank
//! traffic statistics. Functional state is delegated to `RlfLogic`
//! (which is itself verified bit-exact against the shifting LFSR), so this
//! module validates the paper's *memory feasibility* claim rather than
//! re-deriving the algebra.

use crate::{RlfLogic, RlfMode};

/// One RAM access performed during a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// Which of the three banks (`address mod 3`).
    pub bank: usize,
    /// Cell address within the seed vector.
    pub address: usize,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
}

/// Error: a cycle demanded more ports from a bank than a 2-port RAM has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortViolation {
    /// The overloaded bank.
    pub bank: usize,
    /// Number of accesses demanded in the violating cycle.
    pub demanded: usize,
}

impl std::fmt::Display for PortViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bank {} demanded {} ports in one cycle (2-port RAM)",
            self.bank, self.demanded
        )
    }
}

impl std::error::Error for PortViolation {}

/// RLF logic with the 3-bank access-pattern model layered on top.
///
/// # Example
///
/// ```
/// use vibnn_rng::{BankedRlf, SplitMix64};
/// let mut src = SplitMix64::new(1);
/// let mut banked = BankedRlf::random(&mut src);
/// let count = banked.step().expect("no port conflicts");
/// assert!(count <= 255);
/// assert_eq!(banked.reads_per_cycle(), 3);
/// assert_eq!(banked.writes_per_cycle(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BankedRlf {
    inner: RlfLogic,
    /// Total accesses per bank over the generator's lifetime.
    bank_traffic: [u64; 3],
    cycles: u64,
}

/// Read offsets from the head per combined cycle (paper Section 4.1.2).
pub const READ_OFFSETS: [usize; 3] = [0, 250, 251];
/// Write offsets from the head per combined cycle.
pub const WRITE_OFFSETS: [usize; 2] = [253, 254];

impl BankedRlf {
    /// Creates a banked RLF with the paper's 255-bit combined configuration.
    pub fn random(source: &mut impl crate::BitSource) -> Self {
        Self {
            inner: RlfLogic::random(
                crate::taps::PAPER_RLF_WIDTH,
                RlfMode::Combined,
                source,
            ),
            bank_traffic: [0; 3],
            cycles: 0,
        }
    }

    /// The access list for the *current* head position.
    pub fn accesses(&self) -> Vec<BankAccess> {
        let n = self.inner.width();
        let h = self.inner.head();
        let mut list = Vec::with_capacity(5);
        for &off in &READ_OFFSETS {
            let address = (h + off) % n;
            list.push(BankAccess {
                bank: address % 3,
                address,
                is_write: false,
            });
        }
        for &off in &WRITE_OFFSETS {
            let address = (h + off) % n;
            list.push(BankAccess {
                bank: address % 3,
                address,
                is_write: true,
            });
        }
        list
    }

    /// Advances one combined cycle after checking the two-port constraint.
    ///
    /// # Errors
    ///
    /// Returns [`PortViolation`] if any bank would need more than two
    /// accesses this cycle (cannot happen for the paper's offsets; the
    /// check documents and enforces the claim).
    pub fn step(&mut self) -> Result<u32, PortViolation> {
        let mut per_bank = [0usize; 3];
        for a in self.accesses() {
            per_bank[a.bank] += 1;
        }
        for (bank, &demanded) in per_bank.iter().enumerate() {
            if demanded > 2 {
                return Err(PortViolation { bank, demanded });
            }
            self.bank_traffic[bank] += demanded as u64;
        }
        self.cycles += 1;
        Ok(self.inner.step())
    }

    /// Total accesses routed to each bank so far.
    pub fn bank_traffic(&self) -> [u64; 3] {
        self.bank_traffic
    }

    /// Cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// RAM reads per cycle (constant by construction).
    pub fn reads_per_cycle(&self) -> usize {
        READ_OFFSETS.len()
    }

    /// RAM writes per cycle (constant by construction).
    pub fn writes_per_cycle(&self) -> usize {
        WRITE_OFFSETS.len()
    }

    /// Access the wrapped RLF logic.
    pub fn inner(&self) -> &RlfLogic {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn no_port_violation_over_full_wrap() {
        let mut src = SplitMix64::new(10);
        let mut banked = BankedRlf::random(&mut src);
        // 255 head positions (step 2, odd modulus -> full coverage after
        // 255 cycles repeated twice); check several wraps.
        for _ in 0..1000 {
            banked.step().expect("two-port constraint must always hold");
        }
    }

    #[test]
    fn access_pattern_is_three_reads_two_writes() {
        let mut src = SplitMix64::new(11);
        let banked = BankedRlf::random(&mut src);
        let acc = banked.accesses();
        assert_eq!(acc.iter().filter(|a| !a.is_write).count(), 3);
        assert_eq!(acc.iter().filter(|a| a.is_write).count(), 2);
    }

    #[test]
    fn reads_and_writes_hit_distinct_banks_appropriately() {
        // With offsets {0, 250, 251} mod 3 = {0, 1, 2} relative to the head
        // bank, the three reads always land in three different banks.
        let mut src = SplitMix64::new(12);
        let mut banked = BankedRlf::random(&mut src);
        for _ in 0..300 {
            let acc = banked.accesses();
            let read_banks: Vec<usize> =
                acc.iter().filter(|a| !a.is_write).map(|a| a.bank).collect();
            let mut sorted = read_banks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "reads collided: {read_banks:?}");
            banked.step().unwrap();
        }
    }

    #[test]
    fn traffic_is_balanced_across_banks() {
        let mut src = SplitMix64::new(13);
        let mut banked = BankedRlf::random(&mut src);
        for _ in 0..(255 * 4) {
            banked.step().unwrap();
        }
        let t = banked.bank_traffic();
        let total: u64 = t.iter().sum();
        assert_eq!(total, banked.cycles() * 5);
        for &b in &t {
            let share = b as f64 / total as f64;
            assert!((share - 1.0 / 3.0).abs() < 0.05, "bank share {share}");
        }
    }

    #[test]
    fn functional_state_matches_plain_rlf() {
        let mut src_a = SplitMix64::new(14);
        let mut src_b = SplitMix64::new(14);
        let mut banked = BankedRlf::random(&mut src_a);
        let mut plain = RlfLogic::random(255, RlfMode::Combined, &mut src_b);
        for _ in 0..500 {
            assert_eq!(banked.step().unwrap(), plain.step());
        }
    }

    #[test]
    fn port_violation_display() {
        let v = PortViolation { bank: 1, demanded: 3 };
        assert!(v.to_string().contains("bank 1"));
    }
}
