//! A compact bit vector used to model LFSR and seed-memory state.

use std::fmt;

use crate::BitSource;

/// A fixed-length vector of bits backed by 64-bit words.
///
/// Models register files and seed memories (SeMem) in the hardware
/// structures. Indices are `usize` and zero-based.
///
/// # Example
///
/// ```
/// use vibnn_rng::BitVec;
/// let mut bits = BitVec::zeros(255);
/// bits.set(10, true);
/// assert!(bits.get(10));
/// assert_eq!(bits.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector of `len` bits drawn from `source`.
    ///
    /// Guarantees the result is not all-zero (an all-zero LFSR state is a
    /// fixed point of the feedback function); if the draw happens to be
    /// all-zero, the first bit is set.
    pub fn random(len: usize, source: &mut impl BitSource) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = source.next_u64();
        }
        v.mask_tail();
        if v.count_ones() == 0 {
            v.set(0, true);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Borrow the backing 64-bit words (bit `i` lives in word `i / 64` at
    /// position `i % 64`; tail bits beyond [`Self::len`] are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Flips the bit at `idx` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn toggle(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        let w = &mut self.words[idx / 64];
        *w ^= mask;
        *w & mask != 0
    }

    /// XORs the bit at `dst` with the bit at `src` (`dst ^= src`), returning
    /// the new value of `dst`. This is the primitive RLF update operation.
    #[inline]
    pub fn xor_assign_bit(&mut self, dst: usize, src: usize) -> bool {
        let v = self.get(dst) ^ self.get(src);
        self.set(dst, v);
        v
    }

    /// Number of set bits (the parallel-counter output).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Rotates the whole vector left by one position (bit `i` moves to
    /// `i-1`; bit 0 wraps to the top). Models one shift of the circular
    /// LFSR of Figure 3(a).
    pub fn rotate_left_one(&mut self) {
        if self.len <= 1 {
            return;
        }
        let first = self.get(0);
        for i in 0..self.len - 1 {
            let next = self.get(i + 1);
            self.set(i, next);
        }
        self.set(self.len - 1, first);
    }

    /// Returns the bits as a `Vec<bool>` (for test comparisons).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Returns a copy rotated left by `k` positions.
    pub fn rotated_left(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.len);
        if self.len == 0 {
            return out;
        }
        let k = k % self.len;
        for i in 0..self.len {
            out.set(i, self.get((i + k) % self.len));
        }
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn toggle_flips() {
        let mut v = BitVec::zeros(8);
        assert!(v.toggle(3));
        assert!(!v.toggle(3));
    }

    #[test]
    fn xor_assign_bit_semantics() {
        let mut v = BitVec::zeros(8);
        v.set(0, true);
        assert!(v.xor_assign_bit(5, 0)); // 0 ^ 1 = 1
        assert!(!v.xor_assign_bit(5, 0)); // 1 ^ 1 = 0
    }

    #[test]
    fn random_never_all_zero() {
        for seed in 0..50 {
            let mut src = SplitMix64::new(seed);
            let v = BitVec::random(255, &mut src);
            assert!(v.count_ones() > 0);
            assert_eq!(v.len(), 255);
        }
    }

    #[test]
    fn random_tail_is_masked() {
        let mut src = SplitMix64::new(3);
        let v = BitVec::random(65, &mut src);
        // Any ones beyond bit 65 would inflate count_ones past len.
        assert!(v.count_ones() <= 65);
    }

    #[test]
    fn rotate_left_one_matches_manual() {
        let mut src = SplitMix64::new(4);
        let v = BitVec::random(10, &mut src);
        let mut rotated = v.clone();
        rotated.rotate_left_one();
        for i in 0..10 {
            assert_eq!(rotated.get(i), v.get((i + 1) % 10));
        }
    }

    #[test]
    fn rotated_left_by_len_is_identity() {
        let mut src = SplitMix64::new(5);
        let v = BitVec::random(17, &mut src);
        assert_eq!(v.rotated_left(17), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::zeros(4);
        let _ = v.get(4);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = BitVec::zeros(4);
        assert!(!format!("{v:?}").is_empty());
    }
}
