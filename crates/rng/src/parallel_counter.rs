//! Parallel (population) counter with a full-adder cost model.
//!
//! The CLT-based GRNG needs the number of ones in an LFSR. In hardware this
//! is a tree of full adders; the paper notes a 127-input parallel counter
//! needs 120 full adders, which matches the classic identity
//! `FA(n) = n - popcount_width(n)` where `popcount_width(n) = ceil(log2(n+1))`
//! for the n-input counter built from full-adder compressors.

/// An n-input parallel counter (combinational popcount) model.
///
/// Functionally it counts set bits; structurally it reports the hardware
/// cost (full adders, output width) used by the resource model in
/// `vibnn-hw`.
///
/// # Example
///
/// ```
/// use vibnn_rng::ParallelCounter;
/// let pc = ParallelCounter::new(127);
/// assert_eq!(pc.full_adders(), 120); // the paper's figure
/// assert_eq!(pc.output_bits(), 7);
/// let pc3 = ParallelCounter::new(3);
/// assert_eq!(pc3.count(&[true, false, true]), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelCounter {
    inputs: usize,
}

impl ParallelCounter {
    /// Creates a counter for `inputs` bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`.
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "parallel counter needs at least one input");
        Self { inputs }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Width of the binary output, `ceil(log2(inputs + 1))`.
    pub fn output_bits(&self) -> u32 {
        usize::BITS - self.inputs.leading_zeros()
    }

    /// Number of full adders in the compressor tree:
    /// `inputs - output_bits` (e.g. 127 inputs -> 120 FAs).
    pub fn full_adders(&self) -> usize {
        self.inputs - self.output_bits() as usize
    }

    /// Counts the set bits in `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the configured input count.
    pub fn count(&self, bits: &[bool]) -> u32 {
        assert_eq!(
            bits.len(),
            self.inputs,
            "expected {} inputs, got {}",
            self.inputs,
            bits.len()
        );
        bits.iter().map(|&b| u32::from(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_127_input_pc_needs_120_full_adders() {
        let pc = ParallelCounter::new(127);
        assert_eq!(pc.full_adders(), 120);
        assert_eq!(pc.output_bits(), 7);
    }

    #[test]
    fn tap_sized_pc_is_tiny() {
        // The RLF design only sums the 5 tap outputs.
        let pc = ParallelCounter::new(5);
        assert_eq!(pc.output_bits(), 3);
        assert_eq!(pc.full_adders(), 2);
    }

    #[test]
    fn output_bits_at_powers_of_two() {
        assert_eq!(ParallelCounter::new(1).output_bits(), 1);
        assert_eq!(ParallelCounter::new(3).output_bits(), 2);
        assert_eq!(ParallelCounter::new(4).output_bits(), 3);
        assert_eq!(ParallelCounter::new(255).output_bits(), 8);
        assert_eq!(ParallelCounter::new(256).output_bits(), 9);
    }

    #[test]
    fn count_matches_naive() {
        let pc = ParallelCounter::new(10);
        let bits = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        assert_eq!(pc.count(&bits), 6);
    }

    #[test]
    #[should_panic(expected = "expected 10 inputs")]
    fn wrong_width_panics() {
        let pc = ParallelCounter::new(10);
        let _ = pc.count(&[true; 9]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        let _ = ParallelCounter::new(0);
    }
}
