//! Linear-feedback shift registers: Fibonacci, Galois, and the paper's
//! circular (fixed-head) formulation of Figure 3(a).

use crate::{BitSource, BitVec};

/// Classic Fibonacci LFSR: the feedback bit is the XOR of tap cells and is
/// shifted into the register.
///
/// Tap positions use the conventional polynomial-exponent form (1-based,
/// including the register width itself as an implicit tap).
///
/// # Example
///
/// ```
/// use vibnn_rng::FibonacciLfsr;
/// // x^8 + x^6 + x^5 + x^4 + 1
/// let mut lfsr = FibonacciLfsr::new(8, &[8, 6, 5, 4], 0x5A);
/// let bit = lfsr.step();
/// assert!(bit || !bit); // produces a stream of bits
/// ```
#[derive(Debug, Clone)]
pub struct FibonacciLfsr {
    state: u64,
    width: usize,
    tap_mask: u64,
}

impl FibonacciLfsr {
    /// Creates an LFSR of `width` bits (at most 64) with the given taps.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, if any tap is out of range,
    /// or if `seed` is zero after masking to `width` bits (the all-zero
    /// state is degenerate).
    pub fn new(width: usize, taps: &[usize], seed: u64) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let state = seed & mask;
        assert!(state != 0, "seed must be non-zero within the register width");
        let mut tap_mask = 0u64;
        for &t in taps {
            assert!(t >= 1 && t <= width, "tap {t} out of range for width {width}");
            // Tap exponent k corresponds to bit (width - k): the polynomial
            // x^n term is the bit being shifted out (bit 0).
            tap_mask |= 1 << (width - t);
        }
        Self { state, width, tap_mask }
    }

    /// Advances one cycle; returns the bit shifted out.
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        let feedback = (self.state & self.tap_mask).count_ones() & 1;
        self.state >>= 1;
        self.state |= u64::from(feedback) << (self.width - 1);
        out
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl BitSource for FibonacciLfsr {
    fn next_u64(&mut self) -> u64 {
        let mut v = 0u64;
        for i in 0..64 {
            v |= u64::from(self.step()) << i;
        }
        v
    }
}

/// Galois LFSR: the output bit conditionally XORs into the tap cells.
///
/// Produces the same maximal-length sequences as the Fibonacci form for the
/// mirrored polynomial, one bit per cycle, with a single-gate critical path
/// (the form typically preferred in FPGA implementations).
#[derive(Debug, Clone)]
pub struct GaloisLfsr {
    state: u64,
    width: usize,
    tap_mask: u64,
}

impl GaloisLfsr {
    /// Creates a Galois LFSR. Taps use polynomial-exponent positions
    /// (1-based); the width itself must not be listed.
    ///
    /// # Panics
    ///
    /// Panics on zero/oversized width, out-of-range taps, or a zero seed.
    pub fn new(width: usize, taps: &[usize], seed: u64) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let state = seed & mask;
        assert!(state != 0, "seed must be non-zero within the register width");
        let mut tap_mask = 0u64;
        for &t in taps {
            assert!(t >= 1 && t < width, "tap {t} out of range for width {width}");
            tap_mask |= 1 << (t - 1);
        }
        Self { state, width, tap_mask }
    }

    /// Advances one cycle; returns the bit shifted out.
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.tap_mask | (1 << (self.width - 1));
        }
        out
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl BitSource for GaloisLfsr {
    fn next_u64(&mut self) -> u64 {
        let mut v = 0u64;
        for i in 0..64 {
            v |= u64::from(self.step()) << i;
        }
        v
    }
}

/// The paper's circular LFSR (Figure 3a): a width-`n` circular register with
/// fixed head `R(1)`; each cycle the tap cells are replaced by
/// `R(t+1) XOR R(1)`, everything else shifts toward the head, and the old
/// head wraps to the top.
///
/// This is the *reference model* that [`crate::RlfLogic`] must match
/// bit-for-bit (the RAM-based version keeps bits stationary and moves the
/// head instead — see the equivalence tests in `rlf.rs`).
#[derive(Debug, Clone)]
pub struct CircularLfsr {
    state: BitVec,
    taps: Vec<usize>,
}

impl CircularLfsr {
    /// Creates the register from an explicit state.
    ///
    /// `taps` follow the paper's convention: positions `t` in `1..width`
    /// such that `R(t) <- R(t+1) XOR R(1)`.
    ///
    /// # Panics
    ///
    /// Panics if the state is all-zero, or taps are out of range.
    pub fn new(state: BitVec, taps: &[usize]) -> Self {
        assert!(state.count_ones() > 0, "all-zero LFSR state is degenerate");
        let width = state.len();
        for &t in taps {
            assert!(t >= 1 && t < width, "tap {t} out of range for width {width}");
        }
        Self { state, taps: taps.to_vec() }
    }

    /// Creates the register with random non-zero contents.
    pub fn random(width: usize, taps: &[usize], source: &mut impl BitSource) -> Self {
        Self::new(BitVec::random(width, source), taps)
    }

    /// Advances one cycle; returns the population count of the new state.
    ///
    /// Semantics (paper Section 4.1.1, 0-based `state[i] = R(i+1)`):
    /// `R_new(i) = R_old(i+1)` for non-taps, `R_new(t) = R_old(t+1) XOR R_old(1)`
    /// for taps, and the old head wraps to `R_new(n)`.
    pub fn step(&mut self) -> u32 {
        let n = self.state.len();
        let head = self.state.get(0);
        let mut next = BitVec::zeros(n);
        for i in 0..n - 1 {
            next.set(i, self.state.get(i + 1));
        }
        next.set(n - 1, head);
        if head {
            for &t in &self.taps {
                next.toggle(t - 1);
            }
        }
        self.state = next;
        self.state.count_ones()
    }

    /// Current register contents.
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// Register width in bits.
    pub fn width(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn fibonacci_8bit_is_maximal() {
        let mut lfsr = FibonacciLfsr::new(8, &[8, 6, 5, 4], 1);
        let start = lfsr.state();
        let mut period = 0u32;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 255);
        }
        assert_eq!(period, 255);
    }

    #[test]
    fn galois_8bit_is_maximal() {
        // Mirrored taps of x^8+x^6+x^5+x^4+1 -> x^8+x^4+x^3+x^2+1.
        let mut lfsr = GaloisLfsr::new(8, &[4, 3, 2], 1);
        let start = lfsr.state();
        let mut period = 0u32;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 255);
        }
        assert_eq!(period, 255);
    }

    #[test]
    fn fibonacci_never_reaches_zero() {
        let mut lfsr = FibonacciLfsr::new(12, &[12, 6, 4, 1], 0x5A5);
        for _ in 0..10_000 {
            lfsr.step();
            assert_ne!(lfsr.state(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_seed_panics() {
        let _ = FibonacciLfsr::new(8, &[8, 6, 5, 4], 0x100); // 0 after masking
    }

    #[test]
    fn circular_paper_8bit_example_is_maximal() {
        // Paper Figure 3(a): 8-bit, taps {4, 5, 6}.
        let mut src = SplitMix64::new(1);
        let mut lfsr = CircularLfsr::random(8, &[4, 5, 6], &mut src);
        let start = lfsr.state().clone();
        let mut period = 0u32;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == &start {
                break;
            }
            assert!(period <= 255, "period exceeded 255");
        }
        assert_eq!(period, 255);
    }

    #[test]
    fn circular_popcount_delta_bounded_by_tap_count() {
        let mut src = SplitMix64::new(2);
        let mut lfsr = CircularLfsr::random(255, &[250, 252, 253], &mut src);
        let mut prev = lfsr.state().count_ones() as i64;
        for _ in 0..2_000 {
            let c = i64::from(lfsr.step());
            assert!((c - prev).abs() <= 3, "delta exceeded tap count");
            prev = c;
        }
    }

    #[test]
    fn bit_source_impl_yields_balanced_bits() {
        let mut lfsr = FibonacciLfsr::new(32, &[32, 22, 2, 1], 0xDEAD_BEEF);
        let ones: u32 = (0..1000).map(|_| lfsr.next_u64().count_ones()).sum();
        let total = 64_000;
        assert!((ones as f64 / f64::from(total) - 0.5).abs() < 0.02);
    }

    #[test]
    fn galois_and_fibonacci_streams_are_deterministic() {
        let mut a = GaloisLfsr::new(16, &[5, 3, 2], 0xACE1);
        let mut b = GaloisLfsr::new(16, &[5, 3, 2], 0xACE1);
        for _ in 0..500 {
            assert_eq!(a.step(), b.step());
        }
    }
}
