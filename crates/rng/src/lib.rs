//! Uniform random-bit substrate for the VIBNN reproduction.
//!
//! This crate implements every uniform-randomness primitive the paper's
//! Gaussian generators are built from:
//!
//! - [`SplitMix64`] / [`Xoshiro256`] — fast, seedable software PRNGs used for
//!   seeding hardware structures and for software baselines.
//! - [`FibonacciLfsr`] and [`GaloisLfsr`] — classic linear-feedback shift
//!   registers over arbitrary widths, driven by the tap table in [`taps`].
//! - [`CircularLfsr`] — the paper's shifting LFSR formulation (Figure 3a):
//!   a circular register with a fixed head whose tap cells are XORed with the
//!   head on every cycle.
//! - [`RlfLogic`] — the paper's RAM-based Linear Feedback logic (Figure 3b),
//!   which keeps the seed bits stationary and moves the head index instead,
//!   including the *combined-update* optimization (equations 12a–12e) and an
//!   incremental population-count output.
//! - [`BankedRlf`] — the 3-block two-port-RAM banking scheme of Figure 6,
//!   with per-cycle port-conflict checking.
//! - [`ParallelCounter`] — adder-tree population counter with a hardware
//!   cost model (number of full adders), used by the CLT-based GRNGs.
//!
//! # Example
//!
//! ```
//! use vibnn_rng::{RlfLogic, RlfMode};
//!
//! let mut rlf = RlfLogic::from_seed_value(255, 0xDEADBEEF, RlfMode::Combined);
//! let a = rlf.step(); // population count after one update
//! let b = rlf.step();
//! // Combined mode changes the count by at most 5 per cycle (paper §4.1.2).
//! assert!((a as i64 - b as i64).abs() <= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod banked;
mod bitvec;
mod lfsr;
mod parallel_counter;
mod rlf;
mod software;
pub mod taps;

pub use banked::{BankAccess, BankedRlf, PortViolation};
pub use bitvec::BitVec;
pub use lfsr::{CircularLfsr, FibonacciLfsr, GaloisLfsr};
pub use parallel_counter::ParallelCounter;
pub use rlf::{RlfLogic, RlfMode};
pub use software::{SplitMix64, Xoshiro256};

/// A source of uniformly distributed random bits.
///
/// All generators in this crate implement `BitSource`; downstream crates
/// (notably the Gaussian generators in `vibnn-grng`) consume it.
pub trait BitSource {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random bit.
    fn next_bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

impl<T: BitSource + ?Sized> BitSource for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}
