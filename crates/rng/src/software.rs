//! Software PRNGs: SplitMix64 and Xoshiro256++.
//!
//! These are used to seed the hardware structures deterministically and as
//! the uniform source behind the software reference Gaussian generators
//! (Box–Muller, Ziggurat, CDF inversion).

use crate::BitSource;

/// SplitMix64: a tiny, fast, statistically solid 64-bit PRNG.
///
/// Primarily used for deterministic seeding of other generators; every
/// experiment in the repository derives its randomness from a single
/// `SplitMix64` seed so results are exactly reproducible.
///
/// # Example
///
/// ```
/// use vibnn_rng::{BitSource, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator (useful for giving each
    /// parallel component its own stream).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Jumps the stream forward by `draws` outputs in O(1).
    ///
    /// SplitMix64's state advances by a fixed constant per output, so
    /// `advance(n)` leaves the generator exactly where `n` calls to
    /// [`BitSource::next_u64`] would — used by checkpoint loading to
    /// fast-forward replayed streams without iterating.
    pub fn advance(&mut self, draws: u64) {
        self.state = self
            .state
            .wrapping_add(draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

impl BitSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++: a high-quality general-purpose 64-bit PRNG.
///
/// Used where long streams of high-quality uniforms are needed (software
/// Wallace pool initialization, dataset synthesis).
///
/// # Example
///
/// ```
/// use vibnn_rng::{BitSource, Xoshiro256};
/// let mut rng = Xoshiro256::new(7);
/// let u = rng.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the 64-bit seed with SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl BitSource for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_advance_matches_iterated_draws() {
        for n in [0u64, 1, 7, 1000] {
            let mut jumped = SplitMix64::new(55);
            jumped.advance(n);
            let mut walked = SplitMix64::new(55);
            for _ in 0..n {
                walked.next_u64();
            }
            assert_eq!(jumped.next_u64(), walked.next_u64(), "advance({n})");
        }
    }

    #[test]
    fn splitmix_known_value() {
        // First output for seed 0 (reference value from the SplitMix64 paper
        // implementation).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = SplitMix64::new(1);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_changes_state() {
        let mut rng = Xoshiro256::new(5);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(9);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_bounded(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.next_bounded(0);
    }

    #[test]
    fn next_bit_is_balanced() {
        let mut rng = Xoshiro256::new(3);
        let ones: u32 = (0..10_000).map(|_| u32::from(rng.next_bit())).sum();
        assert!((4500..5500).contains(&ones), "ones {ones}");
    }
}
