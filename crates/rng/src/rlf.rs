//! RAM-based Linear Feedback (RLF) logic — the paper's Figure 3(b)/4.
//!
//! Instead of shifting the register, the seed bits stay stationary in RAM
//! and a self-incrementing *indexer* tracks the head: for every tap `t`,
//! `x(h + t) <- x(h + t) XOR x(h)` (equation 10), then `h` advances.
//!
//! Two update modes are provided:
//!
//! - [`RlfMode::Simple`]: the direct 3-tap update (equations 11a–11c),
//!   head step 1. The population count can change by at most 3 per cycle.
//! - [`RlfMode::Combined`]: the paper's quality optimization (equations
//!   12a–12e): two consecutive simple updates fused into one cycle,
//!   5 taps + 2 head reads, head step 2, popcount delta up to 5.
//!
//! `RlfLogic` also maintains the running population count *incrementally*
//! (the subtractor + result-register data flow of Figure 7b), so producing
//! a Gaussian sample needs only the tap bits, not a full-width counter.

use crate::{BitSource, BitVec, CircularLfsr};

/// Update mode for [`RlfLogic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RlfMode {
    /// One simple update per cycle (3 taps, head step 1; equations 11a–c).
    Simple,
    /// Two fused updates per cycle (5 taps, head step 2; equations 12a–e).
    Combined,
}

/// The RAM-based linear feedback generator with incremental popcount.
///
/// # Example
///
/// ```
/// use vibnn_rng::{RlfLogic, RlfMode, SplitMix64};
/// let mut src = SplitMix64::new(7);
/// let mut rlf = RlfLogic::random(255, RlfMode::Combined, &mut src);
/// let count = rlf.step();
/// assert!(count <= 255);
/// ```
#[derive(Debug, Clone)]
pub struct RlfLogic {
    seed: BitVec,
    head: usize,
    taps: Vec<usize>,
    mode: RlfMode,
    count: u32,
}

impl RlfLogic {
    /// Creates the RLF logic from an explicit seed vector, using the
    /// tabulated taps for `seed.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the width has no tabulated tap set
    /// (see [`crate::taps::taps_for`]) or if the seed is all-zero.
    pub fn new(seed: BitVec, mode: RlfMode) -> Self {
        let width = seed.len();
        let taps = crate::taps::taps_for(width)
            .unwrap_or_else(|| panic!("no tabulated taps for width {width}"))
            .to_vec();
        Self::with_taps(seed, &taps, mode)
    }

    /// Creates the RLF logic with explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if the seed is all-zero or any tap is out of range.
    pub fn with_taps(seed: BitVec, taps: &[usize], mode: RlfMode) -> Self {
        assert!(seed.count_ones() > 0, "all-zero seed is degenerate");
        let width = seed.len();
        for &t in taps {
            assert!(t >= 1 && t < width, "tap {t} out of range for width {width}");
        }
        let count = seed.count_ones();
        Self {
            seed,
            head: 0,
            taps: taps.to_vec(),
            mode,
            count,
        }
    }

    /// Creates the RLF logic with a random non-zero seed.
    pub fn random(width: usize, mode: RlfMode, source: &mut impl BitSource) -> Self {
        Self::new(BitVec::random(width, source), mode)
    }

    /// Convenience constructor seeding from a 64-bit value.
    pub fn from_seed_value(width: usize, seed: u64, mode: RlfMode) -> Self {
        let mut src = crate::SplitMix64::new(seed);
        Self::random(width, mode, &mut src)
    }

    /// Register width in bits.
    pub fn width(&self) -> usize {
        self.seed.len()
    }

    /// Current head position.
    pub fn head(&self) -> usize {
        self.head
    }

    /// The update mode.
    pub fn mode(&self) -> RlfMode {
        self.mode
    }

    /// Current population count (the result-register value of Figure 7b).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Borrow the raw seed bits (stationary RAM contents).
    pub fn seed_bits(&self) -> &BitVec {
        &self.seed
    }

    /// Performs one *simple* update at the current head (equation 10) and
    /// advances the head by one. Internal building block for both modes.
    ///
    /// This is the innermost loop of every RLF-based generator, so the
    /// index arithmetic avoids division: taps satisfy `1 <= t < n` and
    /// `head < n`, hence `head + t < 2n` and the modulo is one conditional
    /// subtract.
    fn simple_update(&mut self) {
        let n = self.seed.len();
        if self.seed.get(self.head) {
            let head = self.head;
            for &t in &self.taps {
                let mut idx = head + t;
                if idx >= n {
                    idx -= n;
                }
                if self.seed.toggle(idx) {
                    self.count += 1;
                } else {
                    self.count -= 1;
                }
            }
        }
        self.head += 1;
        if self.head >= n {
            self.head = 0;
        }
    }

    /// Advances one cycle; returns the updated population count, which is
    /// the raw binomially distributed output `B(n, 1/2) ~ N(n/2, n/4)`.
    pub fn step(&mut self) -> u32 {
        match self.mode {
            RlfMode::Simple => self.simple_update(),
            RlfMode::Combined => {
                // Equations 12a-12e are exactly two fused simple updates.
                self.simple_update();
                self.simple_update();
            }
        }
        self.count
    }

    /// Returns the state as seen from the head (i.e. `R(i) = x(h + i - 1)`),
    /// which must equal the corresponding [`CircularLfsr`] state.
    pub fn state_from_head(&self) -> BitVec {
        self.seed.rotated_left(self.head)
    }

    /// Builds the equivalent circular LFSR (same initial state and taps)
    /// for cross-validation.
    pub fn to_circular(&self) -> CircularLfsr {
        CircularLfsr::new(self.state_from_head(), &self.taps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn random_rlf(seed: u64, mode: RlfMode) -> RlfLogic {
        let mut src = SplitMix64::new(seed);
        RlfLogic::random(255, mode, &mut src)
    }

    /// The RLF logic must be *exactly* equivalent to the shifting circular
    /// LFSR of Figure 3(a) — the paper's central claim in Section 4.1.2.
    #[test]
    fn rlf_simple_equals_circular_lfsr() {
        for seed in 0..5 {
            let mut rlf = random_rlf(seed, RlfMode::Simple);
            let mut reference = rlf.to_circular();
            for step in 0..1000 {
                let c_rlf = rlf.step();
                let c_ref = reference.step();
                assert_eq!(c_rlf, c_ref, "popcount diverged at step {step}");
                assert_eq!(
                    rlf.state_from_head(),
                    *reference.state(),
                    "state diverged at step {step}"
                );
            }
        }
    }

    /// One combined step equals two simple steps (equations 12 = 2 x 11).
    #[test]
    fn combined_step_equals_two_simple_steps() {
        let mut src = SplitMix64::new(99);
        let seed = BitVec::random(255, &mut src);
        let mut combined = RlfLogic::new(seed.clone(), RlfMode::Combined);
        let mut twice = RlfLogic::new(seed, RlfMode::Simple);
        for step in 0..2000 {
            let a = combined.step();
            twice.step();
            let b = twice.step();
            assert_eq!(a, b, "diverged at step {step}");
            assert_eq!(combined.seed_bits(), twice.seed_bits());
            assert_eq!(combined.head(), twice.head());
        }
    }

    #[test]
    fn incremental_count_matches_full_popcount() {
        let mut rlf = random_rlf(3, RlfMode::Combined);
        for _ in 0..5000 {
            rlf.step();
            assert_eq!(rlf.count(), rlf.seed_bits().count_ones());
        }
    }

    #[test]
    fn simple_mode_delta_at_most_3() {
        let mut rlf = random_rlf(4, RlfMode::Simple);
        let mut prev = i64::from(rlf.count());
        for _ in 0..5000 {
            let c = i64::from(rlf.step());
            assert!((c - prev).abs() <= 3);
            prev = c;
        }
    }

    #[test]
    fn combined_mode_delta_at_most_5() {
        let mut rlf = random_rlf(5, RlfMode::Combined);
        let mut prev = i64::from(rlf.count());
        let mut seen_gt3 = false;
        for _ in 0..20_000 {
            let c = i64::from(rlf.step());
            let d = (c - prev).abs();
            assert!(d <= 5, "delta {d} exceeds 5");
            if d > 3 {
                seen_gt3 = true;
            }
            prev = c;
        }
        // The whole point of the combined update: deltas beyond 3 do occur.
        assert!(seen_gt3, "combined mode never exceeded delta 3");
    }

    #[test]
    fn head_advances_by_mode_step() {
        let mut simple = random_rlf(6, RlfMode::Simple);
        let mut combined = random_rlf(6, RlfMode::Combined);
        simple.step();
        combined.step();
        assert_eq!(simple.head(), 1);
        assert_eq!(combined.head(), 2);
    }

    #[test]
    fn head_wraps_around() {
        let mut rlf = random_rlf(7, RlfMode::Combined);
        for _ in 0..255 {
            rlf.step();
        }
        // 255 steps x 2 = 510 = 2*255: head back at 0.
        assert_eq!(rlf.head(), 0);
    }

    #[test]
    fn mean_count_near_half_width() {
        let mut rlf = random_rlf(8, RlfMode::Combined);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| u64::from(rlf.step())).sum();
        let mean = sum as f64 / f64::from(n);
        // B(255, 0.5): mean 127.5, std of the *sample mean* is tiny but the
        // stream is autocorrelated, so allow a generous band.
        assert!((mean - 127.5).abs() < 3.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "no tabulated taps")]
    fn unknown_width_panics() {
        let mut src = SplitMix64::new(1);
        let _ = RlfLogic::random(100, RlfMode::Simple, &mut src);
    }

    #[test]
    #[should_panic(expected = "all-zero seed")]
    fn zero_seed_panics() {
        let _ = RlfLogic::new(BitVec::zeros(255), RlfMode::Simple);
    }
}
